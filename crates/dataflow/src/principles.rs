//! Principles 1–3: closed-form optimal intra-operator dataflow (§III-A).
//!
//! Unlike searching-based DSE, each NRA class has an *analytical* optimum:
//!
//! * **Principle 1 (Single-NRA)** — make a tensor stationary, maximize the
//!   tiles of its two dimensions equally, minimize the third dimension's
//!   tile; the smallest tensor is the best stationary choice.
//! * **Principle 2 (Two-NRA)** — untile one dimension, maximize the tile of
//!   the dimension absent from the redundant tensor, minimize the other; the
//!   smallest dimension is the best to untile.
//! * **Principle 3 (Three-NRA)** — keep the smallest tensor fully resident;
//!   remaining tile sizes do not affect memory access.
//!
//! [`optimize`] evaluates the (constant-size) candidate set of closed forms
//! and returns the best — a one-shot O(1) optimization whose result the
//! `fusecu-search` crate verifies against exhaustive enumeration (Fig 9).

use fusecu_ir::{MatMul, MmDim, Operand};

use crate::loopnest::{CostModel, Dataflow, LoopNest};
use crate::tiling::{div_ceil, Tiling};

/// Smallest buffer (in elements) any matmul dataflow can run in: one element
/// per operand tile.
pub const MIN_BUFFER_ELEMS: u64 = 3;

/// Largest integer `t` with `t² + 2t ≤ bs`, i.e. the equal stationary-tile
/// edge admitted by the buffer constraint of Eq. 2 with `T_c = 1`.
fn equal_tile_edge(bs: u64) -> u64 {
    (bs + 1).isqrt().saturating_sub(1)
}

/// Closed-form Single-NRA dataflow with a chosen stationary tensor.
///
/// Tiling per Principle 1: the non-stationary dimension's tile is 1; the
/// stationary dimensions share the remaining buffer as evenly as their sizes
/// allow (with clamp-and-redistribute when one dimension is shorter than the
/// balanced edge). Loop order puts the non-stationary dimension innermost so
/// the stationary tile enjoys full temporal reuse.
///
/// Returns `None` when `bs < MIN_BUFFER_ELEMS`.
pub fn single_nra(model: &CostModel, mm: MatMul, bs: u64, stationary: Operand) -> Option<Dataflow> {
    if bs < MIN_BUFFER_ELEMS {
        return None;
    }
    let [da, db] = stationary.dims();
    let dc = stationary.missing_dim();
    let t = equal_tile_edge(bs).max(1);

    // Clamp to the dimension sizes, then hand freed buffer to the other
    // dimension; one extra redistribution pass reaches the fixed point.
    let mut best: Option<Dataflow> = None;
    for (first, second) in [(da, db), (db, da)] {
        let mut t_first = t.min(mm.dim(first));
        let mut t_second = ((bs - t_first) / (t_first + 1)).clamp(1, mm.dim(second));
        t_first = ((bs - t_second) / (t_second + 1)).clamp(1, mm.dim(first));
        t_second = ((bs - t_first) / (t_first + 1)).clamp(1, mm.dim(second));
        let tiling = Tiling::new(1, 1, 1)
            .with(first, t_first)
            .with(second, t_second)
            .with(dc, 1)
            .balanced(mm);
        if !tiling.fits(mm, bs) {
            continue;
        }
        let nest = LoopNest::new([first, second, dc], tiling);
        let df = model.dataflow(mm, nest);
        if best.is_none_or(|b| df.total_ma() < b.total_ma()) {
            best = Some(df);
        }
    }
    best
}

/// Closed-form Two-NRA dataflow: dimension `untiled` is fully resident,
/// dimension `inner` is the minimized innermost loop, and the remaining
/// dimension's tile is maximized per Principle 2.
///
/// The redundant tensor is the one containing both `untiled` and `inner`;
/// its reload count is the iteration count of the maximized outer dimension.
///
/// Returns `None` when the buffer cannot hold the untiled dimension
/// (`bs < 2·D_u + 1`) or when `untiled == inner`.
pub fn two_nra(model: &CostModel, mm: MatMul, bs: u64, untiled: MmDim, inner: MmDim) -> Option<Dataflow> {
    if untiled == inner {
        return None;
    }
    let du = mm.dim(untiled);
    let outer = MmDim::other(untiled, inner);
    // Footprint: D_u·T_p (tensor {untiled, outer}) + D_u (tensor
    // {untiled, inner} at T_v = 1) + T_p (tensor {outer, inner}).
    if bs < 2 * du + 1 {
        return None;
    }
    let t_p = ((bs - du) / (du + 1)).clamp(1, mm.dim(outer));
    let tiling = Tiling::new(1, 1, 1)
        .with(untiled, du)
        .with(inner, 1)
        .with(outer, t_p)
        .balanced(mm);
    debug_assert!(tiling.fits(mm, bs));
    let nest = LoopNest::new([outer, untiled, inner], tiling);
    Some(model.dataflow(mm, nest))
}

/// Closed-form Three-NRA dataflow: the `resident` tensor is kept entirely
/// on-chip (both its dimensions untiled); the third dimension is tiled with
/// whatever the leftover buffer affords (Principle 3: it does not matter for
/// memory access, but a larger tile helps the mapping stage).
///
/// Returns `None` when `bs < |resident| + D_a + D_b`.
pub fn three_nra(model: &CostModel, mm: MatMul, bs: u64, resident: Operand) -> Option<Dataflow> {
    let [da, db] = resident.dims();
    let dc = resident.missing_dim();
    let footprint = mm.tensor_elems(resident);
    let per_c = mm.dim(da) + mm.dim(db);
    if bs < footprint + per_c {
        return None;
    }
    let t_c = ((bs - footprint) / per_c).clamp(1, mm.dim(dc));
    let tiling = Tiling::new(1, 1, 1)
        .with(da, mm.dim(da))
        .with(db, mm.dim(db))
        .with(dc, t_c)
        .balanced(mm);
    debug_assert!(tiling.fits(mm, bs));
    let nest = LoopNest::new([dc, da, db], tiling);
    Some(model.dataflow(mm, nest))
}

/// Best Single-NRA per Principle 1's scheduling rule (smallest tensor
/// stationary).
pub fn principle_single_nra(model: &CostModel, mm: MatMul, bs: u64) -> Option<Dataflow> {
    single_nra(model, mm, bs, mm.smallest_tensor())
}

/// Best Two-NRA per Principle 2's scheduling rule (smallest dimension
/// untiled); both choices of the minimized inner dimension are evaluated.
pub fn principle_two_nra(model: &CostModel, mm: MatMul, bs: u64) -> Option<Dataflow> {
    let du = mm.min_dim_role();
    MmDim::ALL
        .iter()
        .filter(|d| **d != du)
        .filter_map(|inner| two_nra(model, mm, bs, du, *inner))
        .min_by_key(Dataflow::total_ma)
}

/// Best Three-NRA per Principle 3's scheduling rule (smallest tensor
/// resident).
pub fn principle_three_nra(model: &CostModel, mm: MatMul, bs: u64) -> Option<Dataflow> {
    three_nra(model, mm, bs, mm.smallest_tensor())
}

/// Every closed-form candidate: all stationary choices, all
/// (untiled, inner) pairs, all resident choices. A superset of the
/// principle-selected ones, still constant-size; used to validate that the
/// principles' scheduling rules pick the winners.
pub fn all_candidates(model: &CostModel, mm: MatMul, bs: u64) -> Vec<Dataflow> {
    let mut out = Vec::with_capacity(12);
    for s in Operand::ALL {
        out.extend(single_nra(model, mm, bs, s));
        out.extend(three_nra(model, mm, bs, s));
    }
    for du in MmDim::ALL {
        for dv in MmDim::ALL {
            if du != dv {
                out.extend(two_nra(model, mm, bs, du, dv));
            }
        }
    }
    out
}

/// The exact principle family for one stationary choice: sweep the
/// stationary tensor's first dimension over its balanced tile
/// representatives and derive the maximal second tile analytically.
///
/// The structure is fixed by Principle 1 (third dimension's tile at 1,
/// non-stationary dimension innermost); only the integer split of the
/// buffer between the two stationary dimensions is swept. The sweep is
/// lossless: any optimal `(T_a, T_b)` is dominated by the candidate at
/// `T_a`'s balanced representative with the derived maximal `T_b`. Untiled
/// sweeps (`T_a = D_a`) make this family subsume the Two- and Three-NRA
/// closed forms, so minimizing over the three stationary choices yields the
/// global optimum of the loop-nest model in `O(√D)` evaluations — no
/// combinatorial search.
pub fn stationary_sweep(
    model: &CostModel,
    mm: MatMul,
    bs: u64,
    stationary: Operand,
) -> Option<Dataflow> {
    if bs < MIN_BUFFER_ELEMS {
        return None;
    }
    let [da, db] = stationary.dims();
    let dc = stationary.missing_dim();
    let mut best: Option<Dataflow> = None;
    for t_a in crate::tiling::balanced_tiles(mm.dim(da)) {
        if t_a + 1 >= bs {
            break; // no room left for T_b >= 1 (footprint T_b(T_a+1) + T_a)
        }
        let t_b = ((bs - t_a) / (t_a + 1)).clamp(1, mm.dim(db));
        let tiling = Tiling::new(1, 1, 1)
            .with(da, t_a)
            .with(db, t_b)
            .with(dc, 1)
            .balanced(mm);
        if !tiling.fits(mm, bs) {
            continue;
        }
        let df = model.dataflow(mm, LoopNest::new([da, db, dc], tiling));
        if best.is_none_or(|b| {
            (df.total_ma(), df.buffer_elems()) < (b.total_ma(), b.buffer_elems())
        }) {
            best = Some(df);
        }
    }
    best
}

/// One-shot principle-based optimization (Principles 1–3 + the buffer-size
/// regime selection of §III-A4) under a given cost model.
///
/// Minimizes over the three [`stationary_sweep`] families — an exact,
/// search-free optimization whose result equals the exhaustive-search
/// optimum (verified by `fusecu-search`). Ties prefer the higher NRA class
/// (more tensors at their lower bound), then the smaller buffer footprint.
///
/// Returns `None` only when `bs < MIN_BUFFER_ELEMS`.
pub fn try_optimize_with(model: &CostModel, mm: MatMul, bs: u64) -> Option<Dataflow> {
    let candidates: Vec<Dataflow> = Operand::ALL
        .iter()
        .filter_map(|s| stationary_sweep(model, mm, bs, *s))
        .collect();
    candidates.into_iter().min_by(|x, y| {
        x.total_ma()
            .cmp(&y.total_ma())
            .then_with(|| {
                let nx = x.class().map_or(0, |c| c.count());
                let ny = y.class().map_or(0, |c| c.count());
                ny.cmp(&nx) // more NRA tensors first
            })
            .then_with(|| x.buffer_elems().cmp(&y.buffer_elems()))
    })
}

/// [`try_optimize_with`] under the paper's cost model.
///
/// # Panics
///
/// Panics when `bs < MIN_BUFFER_ELEMS` (no dataflow fits at all).
pub fn optimize(mm: MatMul, bs: u64) -> Dataflow {
    optimize_with(&CostModel::paper(), mm, bs)
}

/// [`try_optimize_with`] that panics on an infeasible buffer.
///
/// # Panics
///
/// Panics when `bs < MIN_BUFFER_ELEMS`.
pub fn optimize_with(model: &CostModel, mm: MatMul, bs: u64) -> Dataflow {
    try_optimize_with(model, mm, bs)
        .unwrap_or_else(|| panic!("buffer of {bs} elements cannot hold any tile of {mm}"))
}

/// The ideal minimal memory access achievable for the matmul under the
/// buffer size — the communication lower bound the principles target.
pub fn lower_bound_ma(mm: MatMul, bs: u64) -> u64 {
    optimize(mm, bs).total_ma()
}

/// Convenience: number of `outer`-dimension sweeps of the redundant tensor
/// under the Two-NRA closed form (used by architecture mapping).
pub fn two_nra_reload_count(mm: MatMul, bs: u64, untiled: MmDim, inner: MmDim) -> Option<u64> {
    let outer = MmDim::other(untiled, inner);
    let du = mm.dim(untiled);
    if bs < 2 * du + 1 {
        return None;
    }
    let t_p = ((bs - du) / (du + 1)).clamp(1, mm.dim(outer));
    Some(div_ceil(mm.dim(outer), t_p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopnest::NraClass;

    const MODEL: CostModel = CostModel {
        partial_sums: crate::loopnest::PartialSumPolicy::PerVisit,
    };

    #[test]
    fn equal_tile_edge_is_exact() {
        for bs in [3u64, 8, 15, 24, 100, 1023, 1 << 20] {
            let t = equal_tile_edge(bs);
            assert!(t * t + 2 * t <= bs, "bs={bs} t={t}");
            assert!((t + 1) * (t + 1) + 2 * (t + 1) > bs, "bs={bs} t={t}");
        }
    }

    #[test]
    fn paper_example_two_nra() {
        // §III-A: A(1024,768) x B(768,768), BS = 512 KiB -> Two-NRA,
        // K untiled, T_M maximized (balanced to 512), T_L = 1, MA(B) = 2KL.
        let mm = MatMul::new(1024, 768, 768);
        let bs = 512 * 1024;
        let df = optimize(mm, bs);
        assert_eq!(df.class(), Some(NraClass::Two));
        assert!(df.tiling().is_untiled(mm, MmDim::K));
        assert_eq!(df.tiling().tile(MmDim::M), 512);
        assert_eq!(df.tiling().tile(MmDim::L), 1);
        assert_eq!(df.ma().of(Operand::Lhs), 1024 * 768);
        assert_eq!(df.ma().of(Operand::Out), 1024 * 768);
        assert_eq!(df.ma().of(Operand::Rhs), 2 * 768 * 768);
        assert!(df.buffer_elems() <= bs);
    }

    #[test]
    fn tiny_buffer_selects_single_nra() {
        let mm = MatMul::new(512, 512, 512);
        // BS well under Dmin²/4 = 65536.
        let df = optimize(mm, 16 * 1024);
        assert_eq!(df.class(), Some(NraClass::Single));
        // Smallest tensor stationary: all equal here, so any; check the
        // stationary tensor is accessed once.
        let nra = df.nra_tensors();
        assert_eq!(nra.len(), 1);
        assert_eq!(df.ma().of(nra[0]), mm.tensor_elems(nra[0]));
    }

    #[test]
    fn large_buffer_reaches_lower_bound() {
        let mm = MatMul::new(300, 100, 200);
        let bs = mm.min_tensor_elems() + 300 + 100 + 10_000;
        let df = optimize(mm, bs);
        assert_eq!(df.class(), Some(NraClass::Three));
        assert_eq!(df.total_ma(), mm.ideal_ma());
    }

    #[test]
    fn infeasible_buffer_is_none() {
        let mm = MatMul::new(4, 4, 4);
        assert!(try_optimize_with(&MODEL, mm, 2).is_none());
        assert!(try_optimize_with(&MODEL, mm, 3).is_some());
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn optimize_panics_below_min_buffer() {
        let _ = optimize(MatMul::new(4, 4, 4), 2);
    }

    #[test]
    fn principle_choices_match_full_candidate_scan() {
        // The paper's scheduling rules (smallest tensor stationary, smallest
        // dim untiled, smallest tensor resident) pick the best candidate of
        // their class across a spread of shapes and buffers.
        let shapes = [
            MatMul::new(64, 256, 1024),
            MatMul::new(1024, 64, 256),
            MatMul::new(256, 1024, 64),
            MatMul::new(512, 512, 512),
            MatMul::new(100, 300, 200),
        ];
        for mm in shapes {
            for bs in [64, 500, 4096, 60_000, 300_000, 2_000_000] {
                let textbook_best = all_candidates(&MODEL, mm, bs)
                    .into_iter()
                    .map(|d| d.total_ma())
                    .min()
                    .unwrap();
                // Principle-selected candidates of each class:
                let picks = [
                    principle_single_nra(&MODEL, mm, bs),
                    principle_two_nra(&MODEL, mm, bs),
                    principle_three_nra(&MODEL, mm, bs),
                ];
                let principle_best = picks
                    .into_iter()
                    .flatten()
                    .map(|d| d.total_ma())
                    .min()
                    .unwrap();
                assert_eq!(
                    principle_best, textbook_best,
                    "mm={mm} bs={bs}: principle scheduling rule missed the optimum"
                );
            }
        }
    }

    #[test]
    fn textbook_forms_track_the_exact_optimum() {
        // The equal-split closed forms of the paper track the exact swept
        // optimum; the gap is pure integer granularity and peaks when an
        // asymmetric iteration-count split (e.g. 2x3 instead of 3x3)
        // squeezes under the buffer bound where the equal split cannot.
        let shapes = [
            MatMul::new(64, 256, 1024),
            MatMul::new(512, 512, 512),
            MatMul::new(1024, 768, 768),
        ];
        for mm in shapes {
            for bs in [64u64, 4096, 60_000, 300_000, 2_000_000] {
                let exact = try_optimize_with(&MODEL, mm, bs).unwrap().total_ma();
                let textbook = all_candidates(&MODEL, mm, bs)
                    .into_iter()
                    .map(|d| d.total_ma())
                    .min()
                    .unwrap();
                assert!(textbook >= exact, "mm={mm} bs={bs}");
                assert!(
                    textbook as f64 <= 1.20 * exact as f64,
                    "mm={mm} bs={bs}: textbook {textbook} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn two_nra_reload_count_matches_dataflow() {
        let mm = MatMul::new(1024, 768, 768);
        let bs = 512 * 1024;
        let reloads = two_nra_reload_count(mm, bs, MmDim::K, MmDim::L).unwrap();
        assert_eq!(reloads, 2);
        assert!(two_nra_reload_count(mm, 100, MmDim::K, MmDim::L).is_none());
    }

    #[test]
    fn ma_is_monotone_in_buffer_size() {
        let mm = MatMul::new(384, 768, 96);
        let mut last = u64::MAX;
        for bs in [8, 64, 512, 4096, 32_768, 262_144, 2_097_152] {
            if let Some(df) = try_optimize_with(&MODEL, mm, bs) {
                assert!(df.total_ma() <= last, "bs={bs}");
                last = df.total_ma();
            }
        }
        assert_eq!(last, mm.ideal_ma());
    }

    #[test]
    fn optimum_never_below_ideal() {
        for mm in [MatMul::new(7, 9, 5), MatMul::new(128, 128, 128)] {
            for bs in [3, 10, 100, 1000, 100_000] {
                let df = try_optimize_with(&MODEL, mm, bs).unwrap();
                assert!(df.total_ma() >= mm.ideal_ma());
                assert!(df.buffer_elems() <= bs);
            }
        }
    }

    #[test]
    fn transposition_symmetry() {
        // Dataflow optimization is symmetric under A<->B transposition.
        let mm = MatMul::new(640, 80, 320);
        for bs in [50, 5_000, 500_000] {
            let a = try_optimize_with(&MODEL, mm, bs).unwrap().total_ma();
            let b = try_optimize_with(&MODEL, mm.transposed(), bs).unwrap().total_ma();
            assert_eq!(a, b, "bs={bs}");
        }
    }
}
