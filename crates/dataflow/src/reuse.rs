//! Dimension-agnostic temporal-reuse analysis.
//!
//! The reload multiplier of a tensor under a loop sequence is the product of
//! the iteration counts of every loop that (a) iterates a dimension the
//! tensor does not contain, and (b) sits *outside* the tensor's trailing
//! reuse window — the maximal innermost run of loops that never change the
//! tensor's tile index. Single-iteration loops are transparent: they neither
//! break the window nor multiply traffic.
//!
//! `fusecu-dataflow`'s [`crate::LoopNest`] and `fusecu-fusion`'s fused nests
//! both reduce their memory-access computation to this one function, keeping
//! intra- and inter-operator accounting consistent.

/// Computes the reload multiplier for a tensor.
///
/// `loops` lists the loop nest from **outermost to innermost**; each entry
/// is `(tensor_contains_dim, iteration_count)`.
///
/// ```
/// use fusecu_dataflow::reuse::reload_multiplier;
///
/// // for m (4) / for l (3) / for k (2), tensor A = (m, k):
/// // the l loop is outside A's window (k, which A contains, is inner).
/// assert_eq!(reload_multiplier([(true, 4), (false, 3), (true, 2)]), 3);
/// // Output C = (m, l) with k innermost: k grants reuse.
/// assert_eq!(reload_multiplier([(true, 4), (true, 3), (false, 2)]), 1);
/// ```
pub fn reload_multiplier<I>(loops: I) -> u64
where
    I: IntoIterator<Item = (bool, u64)>,
    I::IntoIter: DoubleEndedIterator,
{
    let mut mult = 1u64;
    let mut reuse_window = true;
    for (contains, iters) in loops.into_iter().rev() {
        if iters == 1 {
            continue;
        }
        if contains {
            reuse_window = false;
        } else if !reuse_window {
            mult = mult.saturating_mul(iters);
        }
    }
    mult
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_nest_is_one() {
        assert_eq!(reload_multiplier([]), 1);
    }

    #[test]
    fn all_contained_is_one() {
        assert_eq!(reload_multiplier([(true, 5), (true, 7)]), 1);
    }

    #[test]
    fn trailing_absent_loops_reuse() {
        assert_eq!(reload_multiplier([(true, 5), (false, 7), (false, 3)]), 1);
    }

    #[test]
    fn outer_absent_loops_multiply() {
        assert_eq!(reload_multiplier([(false, 7), (true, 5), (false, 3)]), 7);
        assert_eq!(
            reload_multiplier([(false, 2), (false, 3), (true, 5), (true, 4)]),
            6
        );
    }

    #[test]
    fn single_iteration_loops_are_transparent() {
        // An absent one-iteration loop inside the window must not close it,
        // and a contained one-iteration loop must not end reuse.
        assert_eq!(reload_multiplier([(false, 7), (true, 1), (false, 3)]), 1);
        assert_eq!(reload_multiplier([(false, 7), (false, 1), (true, 5)]), 7);
    }

    #[test]
    fn sandwiched_absent_loop_counts() {
        // (a in X, v not, b in X): reload per v iteration.
        assert_eq!(reload_multiplier([(true, 4), (false, 6), (true, 2)]), 6);
    }
}
