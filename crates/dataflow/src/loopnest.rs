//! The generic loop-nest memory-access model.
//!
//! A matmul dataflow at the memory↔buffer level is a *tiled, ordered* loop
//! nest: tile sizes for `M, K, L` plus a loop order over the tile loops
//! (Fig 2(a)/(b) of the paper). This module scores any such nest:
//!
//! * each operand streams its full footprint once per *reload sweep*;
//! * an operand's tile enjoys temporal reuse across the trailing (innermost)
//!   loops whose dimensions it does not contain — the "stationary" effect;
//! * untiled loops (one iteration) are transparent: they never force
//!   reloads, which is exactly why un-tiling a dimension grants an operand
//!   non-redundant access (§III-A2).
//!
//! The resulting per-tensor traffic is exact (uneven edge tiles included)
//! because tiles partition each dimension: one full sweep of an operand
//! streams exactly its footprint.

use std::fmt;

use fusecu_ir::{MatMul, MmDim, Operand};

use crate::tiling::Tiling;

/// How partial sums of the output are charged when the reduction loop
/// revisits an evicted output tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PartialSumPolicy {
    /// Charge the output footprint once per visit — the paper's convention
    /// (its Eq. 1 counts `ML` for a stationary output and symmetric products
    /// otherwise). Used throughout the reproduction for comparability.
    #[default]
    PerVisit,
    /// Charge read + write per revisit (`2r − 1` footprints for `r` visits):
    /// a DRAM-accurate accounting of partial-sum spilling. Provided for
    /// sensitivity studies; never cheaper than [`PartialSumPolicy::PerVisit`].
    ReadWrite,
}

/// Number of tensors with non-redundant access — the paper's dataflow
/// classes (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NraClass {
    /// Exactly one tensor (the stationary one) is accessed once.
    Single,
    /// Two tensors accessed once (one dimension untiled).
    Two,
    /// All three tensors accessed once — the intra-operator lower bound.
    Three,
}

impl NraClass {
    /// The class for a given NRA tensor count (1–3).
    pub fn from_count(count: usize) -> Option<NraClass> {
        match count {
            1 => Some(NraClass::Single),
            2 => Some(NraClass::Two),
            3 => Some(NraClass::Three),
            _ => None,
        }
    }

    /// Number of non-redundantly-accessed tensors.
    pub fn count(self) -> usize {
        match self {
            NraClass::Single => 1,
            NraClass::Two => 2,
            NraClass::Three => 3,
        }
    }
}

impl fmt::Display for NraClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NraClass::Single => "Single-NRA",
            NraClass::Two => "Two-NRA",
            NraClass::Three => "Three-NRA",
        };
        f.write_str(s)
    }
}

/// A tiled, ordered loop nest for one matmul: the memory-level dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopNest {
    /// Loop order from **outermost to innermost** tile loop.
    pub order: [MmDim; 3],
    /// Tile sizes.
    pub tiling: Tiling,
}

impl LoopNest {
    /// Creates a nest; the order must name each dimension exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `order` repeats a dimension.
    pub fn new(order: [MmDim; 3], tiling: Tiling) -> LoopNest {
        assert!(
            order[0] != order[1] && order[0] != order[2] && order[1] != order[2],
            "loop order must be a permutation of m, k, l"
        );
        LoopNest { order, tiling }
    }

    /// All six loop orders.
    pub fn orders() -> [[MmDim; 3]; 6] {
        use MmDim::{K, L, M};
        [
            [M, K, L],
            [M, L, K],
            [K, M, L],
            [K, L, M],
            [L, M, K],
            [L, K, M],
        ]
    }

    /// The reload multiplier of one operand: how many times its full
    /// footprint streams from memory.
    ///
    /// Scans loops from innermost to outermost. Loops with a single
    /// iteration are transparent. Trailing loops over dimensions absent from
    /// the operand give temporal reuse; once a loop over one of the
    /// operand's own dimensions (with more than one iteration) is crossed,
    /// every outer absent-dimension loop multiplies the traffic.
    pub fn reload_multiplier(&self, mm: MatMul, op: Operand) -> u64 {
        crate::reuse::reload_multiplier(
            self.order
                .map(|dim| (op.contains(dim), self.tiling.iterations(mm, dim))),
        )
    }

    /// Whether the operand is accessed without redundancy under this nest.
    pub fn is_nra(&self, mm: MatMul, op: Operand) -> bool {
        self.reload_multiplier(mm, op) == 1
    }

    /// The operands accessed without redundancy.
    pub fn nra_tensors(&self, mm: MatMul) -> Vec<Operand> {
        Operand::ALL
            .iter()
            .copied()
            .filter(|op| self.is_nra(mm, *op))
            .collect()
    }

    /// The NRA class of this nest, if at least one tensor is non-redundant.
    pub fn nra_class(&self, mm: MatMul) -> Option<NraClass> {
        NraClass::from_count(self.nra_tensors(mm).len())
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "for {} / for {} / for {} ; {}",
            self.order[0], self.order[1], self.order[2], self.tiling
        )
    }
}

/// Per-tensor and total memory access of a dataflow, in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryAccess {
    per: [u64; 3], // A, B, C
}

impl MemoryAccess {
    /// Builds from per-operand traffic `(A, B, C)`.
    pub fn new(a: u64, b: u64, c: u64) -> MemoryAccess {
        MemoryAccess { per: [a, b, c] }
    }

    /// Traffic of one operand.
    pub fn of(&self, op: Operand) -> u64 {
        match op {
            Operand::Lhs => self.per[0],
            Operand::Rhs => self.per[1],
            Operand::Out => self.per[2],
        }
    }

    /// Total traffic.
    pub fn total(&self) -> u64 {
        self.per.iter().sum()
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MA(A)={} MA(B)={} MA(C)={} total={}",
            self.per[0],
            self.per[1],
            self.per[2],
            self.total()
        )
    }
}

/// The memory-access cost model shared by the principle optimizer and the
/// searching baseline.
///
/// Derives `Hash`/`Eq` so it can serve as part of a memoization key (see
/// `fusecu-search`'s dataflow cache, keyed on `(MatMul, bs, CostModel)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CostModel {
    /// Partial-sum accounting for the output tensor.
    pub partial_sums: PartialSumPolicy,
}

impl CostModel {
    /// A model with the paper's per-visit output accounting.
    pub fn paper() -> CostModel {
        CostModel {
            partial_sums: PartialSumPolicy::PerVisit,
        }
    }

    /// A model charging read+write for spilled partial sums.
    pub fn read_write() -> CostModel {
        CostModel {
            partial_sums: PartialSumPolicy::ReadWrite,
        }
    }

    /// Memory access of one operand under a nest.
    pub fn tensor_ma(&self, mm: MatMul, nest: &LoopNest, op: Operand) -> u64 {
        let mult = nest.reload_multiplier(mm, op);
        let footprint = mm.tensor_elems(op);
        match (op, self.partial_sums) {
            (Operand::Out, PartialSumPolicy::ReadWrite) => footprint * (2 * mult - 1),
            _ => footprint * mult,
        }
    }

    /// Full per-tensor memory access of a nest.
    pub fn evaluate(&self, mm: MatMul, nest: &LoopNest) -> MemoryAccess {
        MemoryAccess::new(
            self.tensor_ma(mm, nest, Operand::Lhs),
            self.tensor_ma(mm, nest, Operand::Rhs),
            self.tensor_ma(mm, nest, Operand::Out),
        )
    }

    /// Packages a nest with its cost and class into a [`Dataflow`].
    pub fn dataflow(&self, mm: MatMul, nest: LoopNest) -> Dataflow {
        Dataflow {
            mm,
            nest,
            ma: self.evaluate(mm, &nest),
            class: nest.nra_class(mm),
        }
    }
}

/// A scored dataflow: the nest, its memory access, and its NRA class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dataflow {
    mm: MatMul,
    nest: LoopNest,
    ma: MemoryAccess,
    class: Option<NraClass>,
}

impl Dataflow {
    /// The matmul this dataflow executes.
    pub fn mm(&self) -> MatMul {
        self.mm
    }

    /// The loop nest.
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    /// The tile sizes.
    pub fn tiling(&self) -> Tiling {
        self.nest.tiling
    }

    /// The memory access breakdown.
    pub fn ma(&self) -> MemoryAccess {
        self.ma
    }

    /// Total memory access.
    pub fn total_ma(&self) -> u64 {
        self.ma.total()
    }

    /// The NRA class (`None` when every tensor suffers redundant access).
    pub fn class(&self) -> Option<NraClass> {
        self.class
    }

    /// Buffer elements occupied by the live tiles.
    pub fn buffer_elems(&self) -> u64 {
        self.nest.tiling.buffer_elems(self.mm)
    }

    /// The non-redundantly-accessed operands.
    pub fn nra_tensors(&self) -> Vec<Operand> {
        self.nest.nra_tensors(self.mm)
    }

    /// Renders the dataflow as Fig 2-style pseudocode: the tile loops with
    /// their trip counts and tile sizes, the innermost tile computation,
    /// and the reuse annotation per tensor.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut indent = String::new();
        for dim in self.nest.order {
            let n = self.nest.tiling.iterations(self.mm, dim);
            let t = self.nest.tiling.tile(dim).min(self.mm.dim(dim));
            let note = if n == 1 { " (untiled)" } else { "" };
            let _ = writeln!(out, "{indent}for {dim}1 in 0..{n}:   # T_{dim} = {t}{note}");
            indent.push_str("  ");
        }
        let _ = writeln!(out, "{indent}C[m1, l1] += A[m1, k1] x B[k1, l1]");
        for op in Operand::ALL {
            let mult = self.nest.reload_multiplier(self.mm, op);
            let _ = writeln!(
                out,
                "# {op}: {}",
                if mult == 1 {
                    "non-redundant (accessed once)".to_string()
                } else {
                    format!("streamed {mult}x its footprint")
                }
            );
        }
        out
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} | {}", self.nest, self.ma)?;
        if let Some(c) = self.class {
            write!(f, " [{c}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MmDim::{K, L, M};

    /// Brute-force MA: simulate the tile loops, tracking the resident tile
    /// index per tensor and charging a full tile load on change.
    fn simulate_ma(mm: MatMul, nest: &LoopNest, op: Operand) -> u64 {
        let n: Vec<u64> = nest
            .order
            .iter()
            .map(|d| nest.tiling.iterations(mm, *d))
            .collect();
        let tile_span = |dim: MmDim, i: u64| -> u64 {
            let t = nest.tiling.tile(dim).min(mm.dim(dim));
            let start = i * t;
            t.min(mm.dim(dim) - start)
        };
        let mut resident: Option<(u64, u64)> = None;
        let mut traffic = 0u64;
        for i0 in 0..n[0] {
            for i1 in 0..n[1] {
                for i2 in 0..n[2] {
                    let iter = [i0, i1, i2];
                    let pos =
                        |dim: MmDim| iter[nest.order.iter().position(|d| *d == dim).unwrap()];
                    let [da, db] = op.dims();
                    let key = (pos(da), pos(db));
                    if resident != Some(key) {
                        traffic += tile_span(da, key.0) * tile_span(db, key.1);
                        resident = Some(key);
                    }
                }
            }
        }
        traffic
    }

    #[test]
    fn output_stationary_matches_eq1() {
        // Fig 2(b)/Eq 1: order M, L, K(innermost); C stationary.
        let mm = MatMul::new(64, 32, 48);
        let tiling = Tiling::new(8, 1, 6);
        let nest = LoopNest::new([M, L, K], tiling);
        let model = CostModel::paper();
        let ma = model.evaluate(mm, &nest);
        // MA = MKL(1/T_L + 1/T_M) + ML
        assert_eq!(ma.of(Operand::Lhs), 64 * 32 * (48 / 6));
        assert_eq!(ma.of(Operand::Rhs), 32 * 48 * (64 / 8));
        assert_eq!(ma.of(Operand::Out), 64 * 48);
        assert_eq!(nest.nra_class(mm), Some(NraClass::Single));
        assert_eq!(nest.nra_tensors(mm), vec![Operand::Out]);
    }

    #[test]
    fn two_nra_matches_eq3() {
        // Fig 3 top / Eq 3: K untiled, order M, L; A and C non-redundant.
        let mm = MatMul::new(64, 32, 48);
        let tiling = Tiling::new(16, 32, 1);
        let nest = LoopNest::new([M, L, K], tiling);
        let ma = CostModel::paper().evaluate(mm, &nest);
        assert_eq!(ma.of(Operand::Lhs), 64 * 32);
        assert_eq!(ma.of(Operand::Out), 64 * 48);
        assert_eq!(ma.of(Operand::Rhs), 64 * 32 * 48 / 16); // MKL / T_M
        assert_eq!(nest.nra_class(mm), Some(NraClass::Two));
    }

    #[test]
    fn three_nra_reaches_lower_bound() {
        let mm = MatMul::new(64, 32, 48);
        // Smallest tensor A (64x32) resident; tile L.
        let tiling = Tiling::new(64, 32, 4);
        let nest = LoopNest::new([L, M, K], tiling);
        let ma = CostModel::paper().evaluate(mm, &nest);
        assert_eq!(ma.total(), mm.ideal_ma());
        assert_eq!(nest.nra_class(mm), Some(NraClass::Three));
    }

    #[test]
    fn untiled_dim_position_is_irrelevant() {
        let mm = MatMul::new(64, 32, 48);
        let tiling = Tiling::new(16, 32, 1);
        let model = CostModel::paper();
        // K untiled: the same MA regardless of where K sits in the order.
        let reference = model.evaluate(mm, &LoopNest::new([M, L, K], tiling));
        for order in [[M, K, L], [K, M, L], [M, L, K]] {
            let nest = LoopNest::new(order, tiling);
            assert_eq!(model.evaluate(mm, &nest), reference, "order {order:?}");
        }
    }

    #[test]
    fn model_matches_tile_loop_simulation() {
        // Exhaustive cross-check of the analytical multiplier against a
        // literal tile-loop simulation, including uneven edge tiles.
        let model = CostModel::paper();
        let shapes = [
            MatMul::new(7, 5, 9),
            MatMul::new(12, 4, 4),
            MatMul::new(5, 13, 3),
        ];
        for mm in shapes {
            for order in LoopNest::orders() {
                for tm in [1, 2, 3, 7] {
                    for tk in [1, 2, 5] {
                        for tl in [1, 3, 4, 9] {
                            let nest = LoopNest::new(order, Tiling::new(tm, tk, tl));
                            for op in [Operand::Lhs, Operand::Rhs] {
                                assert_eq!(
                                    model.tensor_ma(mm, &nest, op),
                                    simulate_ma(mm, &nest, op),
                                    "mm={mm} nest={nest} op={op}"
                                );
                            }
                            // Output under PerVisit equals visit-counted tile
                            // traffic too.
                            assert_eq!(
                                model.tensor_ma(mm, &nest, Operand::Out),
                                simulate_ma(mm, &nest, Operand::Out),
                                "mm={mm} nest={nest} op=C"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn read_write_policy_never_cheaper() {
        let mm = MatMul::new(16, 16, 16);
        for order in LoopNest::orders() {
            let nest = LoopNest::new(order, Tiling::new(4, 4, 4));
            let pv = CostModel::paper().evaluate(mm, &nest).total();
            let rw = CostModel::read_write().evaluate(mm, &nest).total();
            assert!(rw >= pv);
        }
    }

    #[test]
    fn read_write_counts_spills() {
        let mm = MatMul::new(8, 8, 8);
        // K outermost with C tiled: partial sums spill K-1 times.
        let nest = LoopNest::new([K, M, L], Tiling::new(2, 2, 2));
        let mult = nest.reload_multiplier(mm, Operand::Out);
        assert_eq!(mult, 4);
        assert_eq!(
            CostModel::read_write().tensor_ma(mm, &nest, Operand::Out),
            64 * (2 * 4 - 1)
        );
    }

    #[test]
    fn full_residency_gives_three_nra_for_any_order() {
        let mm = MatMul::new(6, 7, 8);
        let tiling = Tiling::full(mm);
        for order in LoopNest::orders() {
            let nest = LoopNest::new(order, tiling);
            assert_eq!(nest.nra_class(mm), Some(NraClass::Three));
            assert_eq!(CostModel::paper().evaluate(mm, &nest).total(), mm.ideal_ma());
        }
    }

    #[test]
    fn innermost_loop_shields_only_its_absent_tensor() {
        // Order M, K, L with everything tiled: the innermost L loop grants
        // reuse to A = (M,K) only; B is re-swept per M tile and C per K tile.
        let mm = MatMul::new(8, 8, 8);
        let nest = LoopNest::new([M, K, L], Tiling::new(2, 2, 2));
        assert_eq!(nest.nra_tensors(mm), vec![Operand::Lhs]);
        assert_eq!(nest.nra_class(mm), Some(NraClass::Single));
        assert_eq!(nest.reload_multiplier(mm, Operand::Rhs), 4); // per M tile
        assert_eq!(nest.reload_multiplier(mm, Operand::Out), 4); // per K tile
    }

    #[test]
    fn display_renders() {
        let mm = MatMul::new(4, 4, 4);
        let nest = LoopNest::new([M, L, K], Tiling::new(2, 4, 2));
        let df = CostModel::paper().dataflow(mm, nest);
        let s = df.to_string();
        assert!(s.contains("for m") && s.contains("total="), "{s}");
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn repeated_order_dim_panics() {
        let _ = LoopNest::new([M, M, K], Tiling::new(1, 1, 1));
    }
}
