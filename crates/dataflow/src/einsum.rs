//! General tensor operators: the principles beyond matmul.
//!
//! §III-B closes with: "Principle 1–4 can be extended to other tensor
//! operators, as all tensor operators can be represented as for-loops,
//! varying only on the number of loop levels while sharing consistent
//! derivation." This module makes that concrete: an [`EinsumSpec`] is an
//! arbitrary loop nest over named dimensions with tensors projecting onto
//! dimension subsets, scored by the *same* trailing-window reuse analysis
//! ([`crate::reuse`]) as the matmul model — which falls out as the 3-dim
//! special case, byte-for-byte (tested).
//!
//! Covered out of the box: batched matmul (weights reused across the batch
//! loop), attention-score einsums, MTTKRP, and any other multilinear
//! contraction. Optimization is offered at two levels:
//!
//! * [`EinsumSpec::optimize_exhaustive`] — lossless enumeration over
//!   balanced tile representatives × loop orders (practical to rank ~4–5);
//! * [`EinsumSpec::principle_candidates`] — the generalized Principle 1
//!   family: one tensor stationary (its dimensions' tiles maximized
//!   greedily, the rest at 1), evaluated for every tensor choice.

use std::fmt;

use crate::loopnest::PartialSumPolicy;
use crate::reuse::reload_multiplier;
use crate::tiling::balanced_tiles;
use crate::CostModel;

/// One tensor of an einsum: a name plus the subset of loop dimensions its
/// layout projects onto.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EinsumTensor {
    name: String,
    dims: Vec<usize>,
    is_output: bool,
}

impl EinsumTensor {
    /// The tensor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indices (into the spec's dimension list) this tensor spans.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Whether this is the (single) output tensor.
    pub fn is_output(&self) -> bool {
        self.is_output
    }
}

/// A general multilinear tensor operator as a loop nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EinsumSpec {
    dim_names: Vec<String>,
    dim_sizes: Vec<u64>,
    tensors: Vec<EinsumTensor>,
}

impl EinsumSpec {
    /// Starts a spec from named dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics on an empty or zero-sized dimension list.
    pub fn new(dims: &[(&str, u64)]) -> EinsumSpec {
        assert!(!dims.is_empty(), "an einsum needs at least one dimension");
        assert!(
            dims.iter().all(|(_, s)| *s > 0),
            "dimension sizes must be non-zero"
        );
        EinsumSpec {
            dim_names: dims.iter().map(|(n, _)| n.to_string()).collect(),
            dim_sizes: dims.iter().map(|(_, s)| *s).collect(),
            tensors: Vec::new(),
        }
    }

    /// Adds an input tensor over the named dimensions; returns `self`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown dimension name.
    pub fn input(self, name: &str, dims: &[&str]) -> EinsumSpec {
        self.tensor(name, dims, false)
    }

    /// Adds the output tensor; returns `self`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown dimension name or a second output.
    pub fn output(self, name: &str, dims: &[&str]) -> EinsumSpec {
        assert!(
            !self.tensors.iter().any(EinsumTensor::is_output),
            "an einsum has exactly one output"
        );
        self.tensor(name, dims, true)
    }

    fn tensor(mut self, name: &str, dims: &[&str], is_output: bool) -> EinsumSpec {
        let idx: Vec<usize> = dims
            .iter()
            .map(|d| {
                self.dim_names
                    .iter()
                    .position(|n| n == d)
                    .unwrap_or_else(|| panic!("unknown dimension '{d}'"))
            })
            .collect();
        self.tensors.push(EinsumTensor {
            name: name.to_string(),
            dims: idx,
            is_output,
        });
        self
    }

    /// The canonical matmul `C[M,L] = A[M,K] × B[K,L]` as an einsum.
    pub fn matmul(m: u64, k: u64, l: u64) -> EinsumSpec {
        EinsumSpec::new(&[("m", m), ("k", k), ("l", l)])
            .input("A", &["m", "k"])
            .input("B", &["k", "l"])
            .output("C", &["m", "l"])
    }

    /// Batched matmul `C[B,M,L] = A[B,M,K] × W[K,L]` with the weight shared
    /// across the batch — the reuse pattern behind weight-stationary
    /// batching.
    pub fn batched_matmul(b: u64, m: u64, k: u64, l: u64) -> EinsumSpec {
        EinsumSpec::new(&[("b", b), ("m", m), ("k", k), ("l", l)])
            .input("A", &["b", "m", "k"])
            .input("W", &["k", "l"])
            .output("C", &["b", "m", "l"])
    }

    /// MTTKRP `M[i,r] = Σ_{j,k} T[i,j,k] · B[j,r] · C[k,r]`, the sparse/
    /// dense tensor-decomposition kernel.
    pub fn mttkrp(i: u64, j: u64, k: u64, r: u64) -> EinsumSpec {
        EinsumSpec::new(&[("i", i), ("j", j), ("k", k), ("r", r)])
            .input("T", &["i", "j", "k"])
            .input("B", &["j", "r"])
            .input("C", &["k", "r"])
            .output("M", &["i", "r"])
    }

    /// Number of loop dimensions.
    pub fn rank(&self) -> usize {
        self.dim_sizes.len()
    }

    /// Dimension size by index.
    pub fn dim_size(&self, idx: usize) -> u64 {
        self.dim_sizes[idx]
    }

    /// The tensors.
    pub fn tensors(&self) -> &[EinsumTensor] {
        &self.tensors
    }

    /// Footprint of one tensor in elements.
    pub fn tensor_elems(&self, t: &EinsumTensor) -> u64 {
        t.dims.iter().map(|d| self.dim_sizes[*d]).product()
    }

    /// Sum of all tensor footprints: the infinite-buffer lower bound.
    pub fn ideal_ma(&self) -> u64 {
        self.tensors.iter().map(|t| self.tensor_elems(t)).sum()
    }

    /// Validates that the spec has at least one input and exactly one
    /// output.
    ///
    /// # Panics
    ///
    /// Panics otherwise.
    pub fn validate(&self) {
        assert!(
            self.tensors.iter().filter(|t| t.is_output).count() == 1,
            "an einsum needs exactly one output tensor"
        );
        assert!(
            self.tensors.iter().any(|t| !t.is_output),
            "an einsum needs at least one input tensor"
        );
    }

    /// Memory access of one tensor under a nest.
    pub fn tensor_ma(&self, model: &CostModel, nest: &EinsumNest, t: &EinsumTensor) -> u64 {
        let mult = nest.reload_multiplier(self, t);
        let footprint = self.tensor_elems(t);
        match (t.is_output, model.partial_sums) {
            (true, PartialSumPolicy::ReadWrite) => footprint * (2 * mult - 1),
            _ => footprint * mult,
        }
    }

    /// Total memory access under a nest.
    pub fn total_ma(&self, model: &CostModel, nest: &EinsumNest) -> u64 {
        self.tensors
            .iter()
            .map(|t| self.tensor_ma(model, nest, t))
            .sum()
    }

    /// Buffer footprint of a nest: one live tile per tensor.
    pub fn buffer_elems(&self, nest: &EinsumNest) -> u64 {
        self.tensors
            .iter()
            .map(|t| {
                t.dims
                    .iter()
                    .map(|d| nest.tiles[*d].min(self.dim_sizes[*d]))
                    .product::<u64>()
            })
            .sum()
    }

    /// Lossless exhaustive optimization over balanced tile representatives
    /// and all loop orders. Exponential in rank; intended for rank ≤ ~5.
    ///
    /// Returns `None` when no tiling fits.
    pub fn optimize_exhaustive(&self, model: &CostModel, bs: u64) -> Option<(EinsumNest, u64)> {
        self.validate();
        let reps: Vec<Vec<u64>> = self.dim_sizes.iter().map(|d| balanced_tiles(*d)).collect();
        let orders = permutations(self.rank());
        let mut best: Option<(EinsumNest, u64)> = None;
        let mut tiles = vec![1u64; self.rank()];
        self.scan(&reps, 0, &mut tiles, bs, model, &orders, &mut best);
        best
    }

    #[allow(clippy::too_many_arguments)]
    fn scan(
        &self,
        reps: &[Vec<u64>],
        dim: usize,
        tiles: &mut Vec<u64>,
        bs: u64,
        model: &CostModel,
        orders: &[Vec<usize>],
        best: &mut Option<(EinsumNest, u64)>,
    ) {
        if dim == self.rank() {
            let probe = EinsumNest {
                order: (0..self.rank()).collect(),
                tiles: tiles.clone(),
            };
            if self.buffer_elems(&probe) > bs {
                return;
            }
            for order in orders {
                let nest = EinsumNest {
                    order: order.clone(),
                    tiles: tiles.clone(),
                };
                let ma = self.total_ma(model, &nest);
                if best.as_ref().is_none_or(|(_, b)| ma < *b) {
                    *best = Some((nest, ma));
                }
            }
            return;
        }
        for &t in &reps[dim] {
            tiles[dim] = t;
            // Prune: footprint is monotone in every tile.
            let probe = EinsumNest {
                order: (0..self.rank()).collect(),
                tiles: tiles.clone(),
            };
            if self.buffer_elems(&probe) > bs && t > reps[dim][0] {
                break;
            }
            self.scan(reps, dim + 1, tiles, bs, model, orders, best);
        }
        tiles[dim] = 1;
    }

    /// The generalized Principle 1 family: for each tensor `S`, hold `S`
    /// stationary (its dimensions' tiles grown greedily under the buffer
    /// bound, largest dimension first; every other dimension at 1) with
    /// `S`'s absent dimensions innermost. One candidate per tensor —
    /// one-shot, no search.
    pub fn principle_candidates(&self, model: &CostModel, bs: u64) -> Vec<(EinsumNest, u64)> {
        self.validate();
        let mut out = Vec::new();
        for s in &self.tensors {
            let mut tiles = vec![1u64; self.rank()];
            // Greedy equalized growth over S's dims: repeatedly double the
            // currently-smallest stationary tile while it fits.
            let mut grew = true;
            while grew {
                grew = false;
                let mut order: Vec<usize> = s.dims.to_vec();
                order.sort_by_key(|d| tiles[*d]);
                for &d in &order {
                    let next = (tiles[d] * 2).min(self.dim_sizes[d]);
                    if next == tiles[d] {
                        continue;
                    }
                    let old = tiles[d];
                    tiles[d] = next;
                    let probe = EinsumNest {
                        order: (0..self.rank()).collect(),
                        tiles: tiles.clone(),
                    };
                    if self.buffer_elems(&probe) <= bs {
                        grew = true;
                        break;
                    }
                    tiles[d] = old;
                }
            }
            // Loop order: S's dims outermost, absent dims innermost.
            let mut order: Vec<usize> = s.dims.to_vec();
            for d in 0..self.rank() {
                if !s.dims.contains(&d) {
                    order.push(d);
                }
            }
            let nest = EinsumNest { order, tiles };
            if self.buffer_elems(&nest) <= bs {
                let ma = self.total_ma(model, &nest);
                out.push((nest, ma));
            }
        }
        out
    }
}

impl fmt::Display for EinsumSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let out = self.tensors.iter().find(|t| t.is_output);
        let fmt_t = |t: &EinsumTensor| {
            format!(
                "{}[{}]",
                t.name,
                t.dims
                    .iter()
                    .map(|d| self.dim_names[*d].as_str())
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        let inputs: Vec<String> = self
            .tensors
            .iter()
            .filter(|t| !t.is_output)
            .map(fmt_t)
            .collect();
        match out {
            Some(o) => write!(f, "{} = {}", fmt_t(o), inputs.join(" x ")),
            None => write!(f, "(no output) {}", inputs.join(" x ")),
        }
    }
}

/// A tiled, ordered nest over an einsum's dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EinsumNest {
    /// Loop order, outermost first (indices into the spec's dims).
    pub order: Vec<usize>,
    /// Tile size per dimension (by dimension index, not order position).
    pub tiles: Vec<u64>,
}

impl EinsumNest {
    /// Reload multiplier of a tensor: the same trailing-window analysis as
    /// the matmul model, over arbitrarily many loops.
    pub fn reload_multiplier(&self, spec: &EinsumSpec, t: &EinsumTensor) -> u64 {
        let seq: Vec<(bool, u64)> = self
            .order
            .iter()
            .map(|d| {
                let size = spec.dim_sizes[*d];
                let tile = self.tiles[*d].min(size);
                (t.dims.contains(d), size.div_ceil(tile))
            })
            .collect();
        reload_multiplier(seq)
    }
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    for p in permutations(n - 1) {
        for pos in 0..=p.len() {
            let mut q: Vec<usize> = p.iter().map(|v| v + 1).collect();
            q.insert(pos, 0);
            out.push(q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopnest::LoopNest;
    use crate::principles::try_optimize_with;
    use crate::Tiling;
    use fusecu_ir::{MatMul, MmDim};

    const MODEL: CostModel = CostModel {
        partial_sums: PartialSumPolicy::PerVisit,
    };

    #[test]
    fn matmul_einsum_matches_the_matmul_model_pointwise() {
        let mm = MatMul::new(12, 10, 8);
        let spec = EinsumSpec::matmul(12, 10, 8);
        for order in LoopNest::orders() {
            for tiling in [Tiling::new(3, 2, 4), Tiling::new(12, 1, 8), Tiling::new(5, 7, 2)] {
                let nest3 = LoopNest::new(order, tiling);
                let expected = MODEL.evaluate(mm, &nest3);
                let idx = |d: MmDim| match d {
                    MmDim::M => 0usize,
                    MmDim::K => 1,
                    MmDim::L => 2,
                };
                let nest = EinsumNest {
                    order: order.iter().map(|d| idx(*d)).collect(),
                    tiles: vec![
                        tiling.tile(MmDim::M),
                        tiling.tile(MmDim::K),
                        tiling.tile(MmDim::L),
                    ],
                };
                let per: Vec<u64> = spec
                    .tensors()
                    .iter()
                    .map(|t| spec.tensor_ma(&MODEL, &nest, t))
                    .collect();
                assert_eq!(per[0], expected.of(fusecu_ir::Operand::Lhs));
                assert_eq!(per[1], expected.of(fusecu_ir::Operand::Rhs));
                assert_eq!(per[2], expected.of(fusecu_ir::Operand::Out));
            }
        }
    }

    #[test]
    fn matmul_einsum_exhaustive_matches_principles() {
        // The einsum oracle reproduces the matmul optimum exactly.
        for (m, k, l) in [(16u64, 12u64, 20u64), (9, 30, 7)] {
            for bs in [8u64, 64, 300] {
                let spec = EinsumSpec::matmul(m, k, l);
                let (_, einsum_ma) = spec.optimize_exhaustive(&MODEL, bs).unwrap();
                let mm_ma = try_optimize_with(&MODEL, MatMul::new(m, k, l), bs)
                    .unwrap()
                    .total_ma();
                assert_eq!(einsum_ma, mm_ma, "m={m} k={k} l={l} bs={bs}");
            }
        }
    }

    #[test]
    fn batched_matmul_shares_weights_across_the_batch() {
        // With W stationary, the batch loop must not re-stream W.
        let spec = EinsumSpec::batched_matmul(8, 16, 12, 10);
        // Order: k, l outer (W dims), then b, m innermost; W untouched by
        // inner loops -> multiplier 1.
        let nest = EinsumNest {
            order: vec![2, 3, 0, 1],
            tiles: vec![1, 1, 4, 5],
        };
        let w = &spec.tensors()[1];
        assert_eq!(w.name(), "W");
        assert_eq!(nest.reload_multiplier(&spec, w), 1);
        // The A tensor, missing l, pays the l loop.
        let a = &spec.tensors()[0];
        assert_eq!(nest.reload_multiplier(&spec, a), 10 / 5);
    }

    #[test]
    fn batched_matmul_optimum_beats_per_batch_matmuls() {
        // Jointly scheduling the batch reuses W once; b independent matmuls
        // stream W b times. The 4-dim oracle must find the joint reuse.
        let (b, m, k, l) = (6u64, 12u64, 10u64, 8u64);
        let bs = 200u64;
        let spec = EinsumSpec::batched_matmul(b, m, k, l);
        let (_, joint) = spec.optimize_exhaustive(&MODEL, bs).unwrap();
        let per_batch = try_optimize_with(&MODEL, MatMul::new(m, k, l), bs)
            .unwrap()
            .total_ma()
            * b;
        assert!(
            joint < per_batch,
            "joint {joint} should beat {b} independent matmuls {per_batch}"
        );
    }

    #[test]
    fn principle_candidates_track_the_oracle() {
        // Generalized Principle 1 is one-shot and lands near the rank-4
        // oracle (it cannot explore untiled hybrids, so allow slack).
        let spec = EinsumSpec::batched_matmul(4, 20, 16, 12);
        for bs in [50u64, 400, 2_000] {
            let (_, oracle) = spec.optimize_exhaustive(&MODEL, bs).unwrap();
            let best_candidate = spec
                .principle_candidates(&MODEL, bs)
                .into_iter()
                .map(|(_, ma)| ma)
                .min()
                .expect("at least one candidate fits");
            assert!(best_candidate >= oracle);
            assert!(
                best_candidate as f64 <= 2.0 * oracle as f64,
                "bs={bs}: candidate {best_candidate} vs oracle {oracle}"
            );
        }
    }

    #[test]
    fn mttkrp_spec_is_well_formed() {
        let spec = EinsumSpec::mttkrp(30, 20, 10, 8);
        spec.validate();
        assert_eq!(spec.rank(), 4);
        assert_eq!(spec.ideal_ma(), 30 * 20 * 10 + 20 * 8 + 10 * 8 + 30 * 8);
        let (nest, ma) = spec.optimize_exhaustive(&MODEL, 500).unwrap();
        assert!(ma >= spec.ideal_ma());
        assert!(spec.buffer_elems(&nest) <= 500);
        assert_eq!(spec.to_string(), "M[i,r] = T[i,j,k] x B[j,r] x C[k,r]");
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        // Every permutation is a valid ordering.
        for p in permutations(4) {
            let mut q = p.clone();
            q.sort_unstable();
            assert_eq!(q, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    #[should_panic(expected = "exactly one output")]
    fn two_outputs_rejected() {
        EinsumSpec::new(&[("i", 4)])
            .output("x", &["i"])
            .output("y", &["i"])
            .validate();
    }

    #[test]
    #[should_panic(expected = "unknown dimension")]
    fn unknown_dim_rejected() {
        let _ = EinsumSpec::new(&[("i", 4)]).input("x", &["z"]);
    }
}
