//! Two-level dataflows: memory ↔ buffer ↔ PE registers.
//!
//! §II-A splits dataflow into tiling/scheduling (memory↔buffer) and mapping
//! (buffer↔PE). §IV-B then re-applies the *same* principles at the register
//! level: "BS corresponds to the register size now, which is the number of
//! PEs (N × N)", from which the paper derives that un-tiling is optimal at
//! the PE level exactly when `D_min < 2N` — the bound that sizes FuseCU's
//! reconfigurable fabric.
//!
//! A [`TwoLevelNest`] nests an inner (register-level) tiled loop nest
//! inside each iteration of the outer (buffer-level) nest. Both traffic
//! levels fall out of the same trailing-window reuse analysis:
//!
//! * DRAM↔buffer traffic: the outer nest alone (tiles live in the buffer);
//! * buffer↔PE traffic: the concatenated outer+inner loop sequence (a
//!   register tile survives exactly the trailing loops whose dimensions
//!   its tensor does not contain — including outer loops, which is what
//!   lets an output accumulate in PE registers across buffer-tile swaps).
//!
//! Tiles partition dimensions hierarchically. Both measures are exact when
//! inner tiles divide the outer tiles evenly; with ragged edges the
//! register-level figure is a tight upper bound (the last outer tile along
//! a dimension runs fewer inner iterations than the uniform multiplier
//! assumes), which the tests pin down against a literal simulation.

use std::fmt;

use fusecu_ir::{MatMul, MmDim, Operand};

use crate::loopnest::{CostModel, LoopNest, MemoryAccess, PartialSumPolicy};
use crate::principles::{try_optimize_with, MIN_BUFFER_ELEMS};
use crate::reuse::reload_multiplier;
use crate::tiling::Tiling;

/// A buffer-level nest with a register-level nest inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoLevelNest {
    /// The memory↔buffer nest (tiling + scheduling).
    pub outer: LoopNest,
    /// The buffer↔PE nest (mapping); its tiles subdivide the outer tiles.
    pub inner: LoopNest,
}

impl TwoLevelNest {
    /// Creates a two-level nest, clamping the inner tiling to the outer
    /// tile extents so the levels always nest.
    pub fn new(outer: LoopNest, inner: LoopNest, mm: MatMul) -> TwoLevelNest {
        let clamp = |d: MmDim| {
            inner
                .tiling
                .tile(d)
                .min(outer.tiling.tile(d))
                .min(mm.dim(d))
        };
        let inner = LoopNest::new(
            inner.order,
            Tiling::new(1, 1, 1)
                .with(MmDim::M, clamp(MmDim::M))
                .with(MmDim::K, clamp(MmDim::K))
                .with(MmDim::L, clamp(MmDim::L)),
        );
        TwoLevelNest { outer, inner }
    }

    /// The matmul seen by the inner nest: one (full-size) outer tile.
    pub fn outer_tile_mm(&self, mm: MatMul) -> MatMul {
        MatMul::new(
            self.outer.tiling.tile(MmDim::M).min(mm.m()),
            self.outer.tiling.tile(MmDim::K).min(mm.k()),
            self.outer.tiling.tile(MmDim::L).min(mm.l()),
        )
    }

    /// Iteration counts of the inner loops within one outer tile.
    fn inner_iterations(&self, mm: MatMul, dim: MmDim) -> u64 {
        let tile_extent = self.outer.tiling.tile(dim).min(mm.dim(dim));
        tile_extent.div_ceil(self.inner.tiling.tile(dim).min(tile_extent))
    }

    /// Reload multiplier of one operand at the register level: the
    /// concatenated outer+inner loop sequence.
    pub fn register_multiplier(&self, mm: MatMul, op: Operand) -> u64 {
        let outer = self
            .outer
            .order
            .map(|d| (op.contains(d), self.outer.tiling.iterations(mm, d)));
        let inner = self
            .inner
            .order
            .map(|d| (op.contains(d), self.inner_iterations(mm, d)));
        reload_multiplier(outer.into_iter().chain(inner))
    }

    /// DRAM↔buffer traffic (the outer nest alone).
    pub fn dram_ma(&self, model: &CostModel, mm: MatMul) -> MemoryAccess {
        model.evaluate(mm, &self.outer)
    }

    /// Buffer↔PE traffic.
    pub fn buffer_ma(&self, model: &CostModel, mm: MatMul) -> MemoryAccess {
        let per = Operand::ALL.map(|op| {
            let mult = self.register_multiplier(mm, op);
            let footprint = mm.tensor_elems(op);
            match (op, model.partial_sums) {
                (Operand::Out, PartialSumPolicy::ReadWrite) => footprint * (2 * mult - 1),
                _ => footprint * mult,
            }
        });
        MemoryAccess::new(per[0], per[1], per[2])
    }

    /// Buffer footprint (outer tiles) in elements.
    pub fn buffer_footprint(&self, mm: MatMul) -> u64 {
        self.outer.tiling.buffer_elems(mm)
    }

    /// Register footprint (inner tiles) in elements.
    pub fn register_footprint(&self, mm: MatMul) -> u64 {
        let tile_mm = self.outer_tile_mm(mm);
        self.inner.tiling.buffer_elems(tile_mm)
    }
}

impl fmt::Display for TwoLevelNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "outer[{}] inner[{}]", self.outer, self.inner)
    }
}

/// A fully-scored two-level dataflow.
#[derive(Debug, Clone, Copy)]
pub struct TwoLevelDataflow {
    mm: MatMul,
    nest: TwoLevelNest,
    dram: MemoryAccess,
    buffer: MemoryAccess,
}

impl TwoLevelDataflow {
    /// The nest.
    pub fn nest(&self) -> &TwoLevelNest {
        &self.nest
    }

    /// The matmul.
    pub fn mm(&self) -> MatMul {
        self.mm
    }

    /// DRAM↔buffer traffic.
    pub fn dram_ma(&self) -> MemoryAccess {
        self.dram
    }

    /// Buffer↔PE traffic.
    pub fn buffer_ma(&self) -> MemoryAccess {
        self.buffer
    }
}

impl fmt::Display for TwoLevelDataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | dram {} | buffer {}",
            self.nest,
            self.dram.total(),
            self.buffer.total()
        )
    }
}

/// Principle-based two-level optimization: Principles 1–3 select the outer
/// nest under the buffer capacity, then select the inner nest — for the
/// outer-tile matmul — under the register capacity. This is exactly the
/// paper's §IV-B re-application of the principles with "BS = N²".
///
/// Returns `None` when either capacity is below the 3-element minimum.
pub fn optimize_two_level(
    model: &CostModel,
    mm: MatMul,
    buffer_elems: u64,
    register_elems: u64,
) -> Option<TwoLevelDataflow> {
    if buffer_elems < MIN_BUFFER_ELEMS || register_elems < MIN_BUFFER_ELEMS {
        return None;
    }
    let outer = try_optimize_with(model, mm, buffer_elems)?;
    let tile_mm = MatMul::new(
        outer.tiling().tile(MmDim::M).min(mm.m()),
        outer.tiling().tile(MmDim::K).min(mm.k()),
        outer.tiling().tile(MmDim::L).min(mm.l()),
    );
    let inner = try_optimize_with(model, tile_mm, register_elems)?;
    let nest = TwoLevelNest::new(*outer.nest(), *inner.nest(), mm);
    Some(TwoLevelDataflow {
        mm,
        nest,
        dram: nest.dram_ma(model, mm),
        buffer: nest.buffer_ma(model, mm),
    })
}

/// The §IV-B theorem: with PE-register capacity `N²`, a register-level
/// un-tiling strategy (Two-/Three-NRA) is optimal only when the operator's
/// smallest dimension is below `2N`. Returns the bound `2N` for a fabric
/// edge.
pub fn untiling_bound(pe_dim: u64) -> u64 {
    2 * pe_dim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopnest::NraClass;
    use MmDim::{K, L, M};

    const MODEL: CostModel = CostModel {
        partial_sums: PartialSumPolicy::PerVisit,
    };

    /// Brute-force register-level traffic: iterate the six hierarchical
    /// tile loops, charging a register-tile load on index change.
    fn simulate_register_ma(mm: MatMul, nest: &TwoLevelNest, op: Operand) -> u64 {
        let outer_counts: Vec<u64> = nest
            .outer
            .order
            .iter()
            .map(|d| nest.outer.tiling.iterations(mm, *d))
            .collect();
        let inner_counts: Vec<u64> = nest
            .inner
            .order
            .iter()
            .map(|d| nest.inner_iterations(mm, *d))
            .collect();
        let mut resident = None;
        let mut traffic = 0u64;
        let mut outer_idx = [0u64; 3];
        let mut inner_idx = [0u64; 3];
        // Odometer over the six loops, outer-major.
        let total: u64 = outer_counts.iter().chain(&inner_counts).product();
        for step in 0..total {
            let mut rem = step;
            for (slot, counts, idx) in [
                (1u64, &inner_counts, &mut inner_idx),
                (0, &outer_counts, &mut outer_idx),
            ] {
                let _ = slot;
                for i in (0..3).rev() {
                    idx[i] = rem % counts[i];
                    rem /= counts[i];
                }
            }
            // Global register-tile index per dimension: outer tile index
            // refined by inner tile index.
            let global = |dim: MmDim| {
                let op_ = nest.outer.order.iter().position(|d| *d == dim).unwrap();
                let ip = nest.inner.order.iter().position(|d| *d == dim).unwrap();
                (outer_idx[op_], inner_idx[ip])
            };
            // Ragged edge: the last outer tile along a dimension may have
            // fewer inner iterations; skip iterations that fall past it.
            let exists = |dim: MmDim| {
                let (oi, ii) = global(dim);
                let ot = nest.outer.tiling.tile(dim).min(mm.dim(dim));
                let outer_extent = ot.min(mm.dim(dim) - oi * ot);
                let it = nest.inner.tiling.tile(dim).min(mm.dim(dim));
                ii * it < outer_extent
            };
            if !MmDim::ALL.iter().all(|d| exists(*d)) {
                continue;
            }
            let [da, db] = op.dims();
            let key = (global(da), global(db));
            if resident != Some(key) {
                let span = |dim: MmDim, (oi, ii): (u64, u64)| {
                    let ot = nest.outer.tiling.tile(dim).min(mm.dim(dim));
                    let outer_extent = ot.min(mm.dim(dim) - oi * ot);
                    let it = nest.inner.tiling.tile(dim).min(mm.dim(dim));
                    it.min(outer_extent - ii * it)
                };
                traffic += span(da, key.0) * span(db, key.1);
                resident = Some(key);
            }
        }
        traffic
    }

    #[test]
    fn register_traffic_matches_hierarchical_simulation() {
        // Even-division tilings: the analytical multiplier is exact.
        let mm = MatMul::new(8, 8, 12);
        let cases = [
            (
                LoopNest::new([M, L, K], Tiling::new(4, 4, 6)),
                LoopNest::new([M, L, K], Tiling::new(2, 1, 3)),
            ),
            (
                LoopNest::new([K, M, L], Tiling::new(4, 8, 4)),
                LoopNest::new([L, K, M], Tiling::new(4, 2, 2)),
            ),
            (
                LoopNest::new([L, K, M], Tiling::new(8, 2, 12)),
                LoopNest::new([M, K, L], Tiling::new(2, 2, 4)),
            ),
        ];
        for (outer, inner) in cases {
            let nest = TwoLevelNest::new(outer, inner, mm);
            for op in Operand::ALL {
                let analytic = mm.tensor_elems(op) * nest.register_multiplier(mm, op);
                assert_eq!(
                    analytic,
                    simulate_register_ma(mm, &nest, op),
                    "nest={nest} op={op}"
                );
            }
        }
    }

    #[test]
    fn ragged_register_traffic_is_upper_bounded() {
        // With ragged inner tiles the analytical figure upper-bounds the
        // simulated truth and stays within the last-tile slack.
        let mm = MatMul::new(10, 8, 12);
        let nest = TwoLevelNest::new(
            LoopNest::new([M, L, K], Tiling::new(5, 4, 6)),
            LoopNest::new([M, L, K], Tiling::new(2, 1, 3)),
            mm,
        );
        for op in Operand::ALL {
            let analytic = mm.tensor_elems(op) * nest.register_multiplier(mm, op);
            let simulated = simulate_register_ma(mm, &nest, op);
            assert!(analytic >= simulated, "{op}");
            assert!(analytic <= simulated * 2, "{op}: bound too loose");
        }
    }

    #[test]
    fn buffer_traffic_at_least_dram_traffic() {
        // Each operand crosses the buffer at least as often as it crosses
        // DRAM (the inner loops only add reloads).
        let mm = MatMul::new(96, 64, 80);
        for bs in [200u64, 2_000, 10_000] {
            for rs in [16u64, 64, 256] {
                let df = optimize_two_level(&MODEL, mm, bs, rs).unwrap();
                for op in Operand::ALL {
                    assert!(
                        df.buffer_ma().of(op) >= df.dram_ma().of(op),
                        "bs={bs} rs={rs} {op}"
                    );
                }
            }
        }
    }

    #[test]
    fn register_level_respects_capacity() {
        let mm = MatMul::new(512, 512, 512);
        let df = optimize_two_level(&MODEL, mm, 100_000, 16 * 16).unwrap();
        assert!(df.nest().register_footprint(mm) <= 16 * 16);
        assert!(df.nest().buffer_footprint(mm) <= 100_000);
    }

    #[test]
    fn untiling_bound_theorem() {
        // §IV-B: with register capacity N², an un-tiling strategy (the
        // Two-/Three-NRA register dataflows) is optimal only when the
        // operator tile's smallest dimension is below 2N. Apply the
        // principles at the register level to cubic-ish tiles of varying
        // smallest dimension and observe where untiling stops winning.
        let n = 16u64; // fabric edge; registers = N².
        let rs = n * n;
        let bound = untiling_bound(n);
        assert_eq!(bound, 32);
        for dmin in [2u64, 4, 8, 16, 24, 31, 32, 40, 64, 128] {
            // Tile with controlled smallest dimension; other dims large so
            // Dmin is the binding one.
            let tile_mm = MatMul::new(256, dmin, 256);
            let inner = try_optimize_with(&MODEL, tile_mm, rs).expect("rs >= 3");
            let untiled_k = inner.tiling().is_untiled(tile_mm, K);
            let class = inner.class();
            if dmin >= bound {
                assert!(
                    !untiled_k || class == Some(NraClass::Single),
                    "dmin={dmin} >= 2N: untiling K should not be register-optimal ({inner})"
                );
                // The regime table agrees: register capacity N² is in the
                // tiny/small band when Dmin >= 2N.
                assert!(rs <= dmin * dmin / 2, "dmin={dmin}");
            }
            if dmin < n {
                assert!(
                    untiled_k,
                    "dmin={dmin} << 2N: the principles should untile K ({inner})"
                );
                assert!(matches!(class, Some(NraClass::Two) | Some(NraClass::Three)));
            }
        }
    }

    #[test]
    fn infeasible_capacities_return_none() {
        let mm = MatMul::new(8, 8, 8);
        assert!(optimize_two_level(&MODEL, mm, 2, 100).is_none());
        assert!(optimize_two_level(&MODEL, mm, 100, 2).is_none());
    }

    #[test]
    fn display_reports_both_levels() {
        let mm = MatMul::new(64, 64, 64);
        let df = optimize_two_level(&MODEL, mm, 1_000, 64).unwrap();
        let s = df.to_string();
        assert!(s.contains("outer[") && s.contains("buffer"), "{s}");
    }
}
