//! Buffer-size regimes (§III-A4): which NRA class wins at which buffer size.
//!
//! The paper classifies buffers by their size relative to the smallest
//! dimension `D_min` and the smallest tensor `Tensor_min`:
//!
//! | regime | condition | optimal dataflow |
//! |---|---|---|
//! | Tiny   | `BS ≤ D_min²/4`            | Single-NRA |
//! | Small  | `D_min²/4 < BS ≤ D_min²/2` | Single- or Two-NRA |
//! | Medium | `D_min²/2 < BS ≤ Tensor_min` | Two-NRA |
//! | Large  | `BS > Tensor_min`          | Three-NRA |
//!
//! The table is a *theorem about the closed forms* in
//! [`crate::principles`], with two refinements this module makes precise:
//! the Large boundary is the exact Three-NRA feasibility threshold
//! (`Tensor_min + D_a + D_b`, not the paper's bare `Tensor_min`), and in
//! the Medium band the prediction is "Two-NRA is (near-)optimal" — for
//! cube-like shapes Single-NRA can stay ahead by under a percent, which
//! [`prediction_holds`] tolerates explicitly. Property tests validate the
//! refined statements against full enumeration.

use std::fmt;

use fusecu_ir::MatMul;

use crate::loopnest::{CostModel, NraClass};

/// The four buffer-size regimes of §III-A4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BufferRegime {
    /// `BS ≤ D_min²/4` — Single-NRA is optimal.
    Tiny,
    /// `D_min²/4 < BS ≤ D_min²/2` — the shift band; either Single- or
    /// Two-NRA may win depending on the exact shape.
    Small,
    /// `D_min²/2 < BS ≤ Tensor_min` — Two-NRA is optimal.
    Medium,
    /// `BS > Tensor_min` — Three-NRA reaches the ideal minimum.
    Large,
}

impl BufferRegime {
    /// Classifies a buffer size for a matmul.
    ///
    /// The Large boundary uses the exact Three-NRA feasibility threshold:
    /// the resident tensor *plus one unit stream tile per other operand*
    /// must fit (`|S| + D_a + D_b`). The paper's table writes this as
    /// `BS > Tensor_min`, dropping the `D_a + D_b` term; within that sliver
    /// Three-NRA cannot actually be scheduled, so Two-NRA remains optimal.
    pub fn classify(mm: MatMul, bs: u64) -> BufferRegime {
        let dmin = mm.min_dim();
        let dmin_sq = dmin * dmin;
        let three_nra_threshold = fusecu_ir::Operand::ALL
            .iter()
            .map(|s| {
                let [a, b] = s.dims();
                mm.tensor_elems(*s) + mm.dim(a) + mm.dim(b)
            })
            .min()
            .expect("three operands");
        if bs >= three_nra_threshold {
            BufferRegime::Large
        } else if 2 * bs > dmin_sq {
            BufferRegime::Medium
        } else if 4 * bs > dmin_sq {
            BufferRegime::Small
        } else {
            BufferRegime::Tiny
        }
    }

    /// The NRA classes the paper predicts to be optimal in this regime.
    pub fn predicted_classes(self) -> &'static [NraClass] {
        match self {
            BufferRegime::Tiny => &[NraClass::Single],
            BufferRegime::Small => &[NraClass::Single, NraClass::Two],
            BufferRegime::Medium => &[NraClass::Two],
            BufferRegime::Large => &[NraClass::Three],
        }
    }

    /// Whether an observed optimal class is consistent with the paper's
    /// prediction for this regime.
    ///
    /// A higher class than predicted is also accepted: when a dimension is
    /// tiny relative to the buffer, the closed forms reach a better class
    /// "early" (e.g. Three-NRA already at `BS = Tensor_min` exactly), which
    /// only strengthens the bound.
    pub fn admits(self, class: NraClass) -> bool {
        self.predicted_classes().contains(&class)
            || self
                .predicted_classes()
                .iter()
                .all(|p| class.count() >= p.count())
    }
}

/// Checks the regime table's prediction for `(mm, bs)` allowing near-ties:
/// either the observed optimal class is [`BufferRegime::admits`]-ed, or a
/// dataflow of the predicted class exists within `tol` of the observed
/// optimum.
///
/// The tolerance covers what the paper's continuous, `D_min`-dominated
/// derivation glosses over: when all three dimensions are comparable, a
/// Single-NRA dataflow (sometimes with a *non-smallest* stationary tensor)
/// can stay ahead of the predicted Two-NRA through part of the Medium band.
/// Empirically the gap stays below ~10 % (`tol = 1.12` passes extensive
/// property testing), and for shapes with `D_max ≥ 4·D_min` — the regime
/// the derivation targets — the prediction is exact.
pub fn prediction_holds(model: &CostModel, mm: MatMul, bs: u64, tol: f64) -> bool {
    let Some(best) = crate::principles::try_optimize_with(model, mm, bs) else {
        return true; // nothing schedulable; no prediction to check
    };
    let class = best.class().expect("optimum always classifies");
    let regime = BufferRegime::classify(mm, bs);
    if regime.admits(class) {
        return true;
    }
    regime
        .predicted_classes()
        .iter()
        .filter_map(|c| match c {
            NraClass::Single => crate::principles::principle_single_nra(model, mm, bs),
            NraClass::Two => crate::principles::principle_two_nra(model, mm, bs),
            NraClass::Three => crate::principles::principle_three_nra(model, mm, bs),
        })
        .any(|df| df.total_ma() as f64 <= tol * best.total_ma() as f64)
}

impl fmt::Display for BufferRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BufferRegime::Tiny => "tiny",
            BufferRegime::Small => "small",
            BufferRegime::Medium => "medium",
            BufferRegime::Large => "large",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopnest::CostModel;
    use crate::principles::try_optimize_with;

    #[test]
    fn boundaries_match_paper() {
        // BERT example: Dmin = 768, Tensor_min = 589 824 (tensor B). The
        // Large boundary adds B's stream tiles: 589 824 + 768 + 768.
        let mm = MatMul::new(1024, 768, 768);
        assert_eq!(BufferRegime::classify(mm, 147_456), BufferRegime::Tiny); // = Dmin²/4
        assert_eq!(BufferRegime::classify(mm, 147_457), BufferRegime::Small);
        assert_eq!(BufferRegime::classify(mm, 294_912), BufferRegime::Small); // = Dmin²/2
        assert_eq!(BufferRegime::classify(mm, 294_913), BufferRegime::Medium);
        assert_eq!(BufferRegime::classify(mm, 512 * 1024), BufferRegime::Medium);
        assert_eq!(BufferRegime::classify(mm, 591_359), BufferRegime::Medium);
        assert_eq!(BufferRegime::classify(mm, 591_360), BufferRegime::Large);
    }

    #[test]
    fn three_nra_is_feasible_exactly_in_the_large_regime() {
        // The corrected boundary is exact: at Large's first buffer size a
        // Three-NRA dataflow exists; one element below it does not.
        for mm in [
            MatMul::new(183, 337, 113),
            MatMul::new(1024, 768, 768),
            MatMul::new(7, 9, 5),
        ] {
            let threshold = (3u64..)
                .find(|bs| BufferRegime::classify(mm, *bs) == BufferRegime::Large)
                .unwrap();
            let model = CostModel::paper();
            let at = try_optimize_with(&model, mm, threshold).unwrap();
            assert_eq!(at.class(), Some(crate::NraClass::Three), "{mm}");
            let below = try_optimize_with(&model, mm, threshold - 1).unwrap();
            assert_ne!(below.class(), Some(crate::NraClass::Three), "{mm}");
        }
    }

    #[test]
    fn optimizer_class_respects_regime_prediction() {
        let model = CostModel::paper();
        let shapes = [
            MatMul::new(1024, 768, 768),
            MatMul::new(512, 512, 512),
            MatMul::new(2048, 128, 2048),
            MatMul::new(96, 4096, 96),
        ];
        for mm in shapes {
            for bs in [
                1_000u64,
                10_000,
                50_000,
                100_000,
                200_000,
                400_000,
                800_000,
                4_000_000,
                40_000_000,
            ] {
                let df = try_optimize_with(&model, mm, bs).unwrap();
                let regime = BufferRegime::classify(mm, bs);
                let class = df.class().expect("optimal dataflow always has a class");
                assert!(
                    prediction_holds(&model, mm, bs, 1.12),
                    "mm={mm} bs={bs}: regime {regime} prediction fails for {class}"
                );
            }
        }
    }

    #[test]
    fn shift_band_contains_the_crossover() {
        // §III-A4: the Single->Two shift point lies in (Dmin²/4, Dmin²/2].
        // The bound is derived for shapes where the other dimensions dominate
        // Dmin; use one and locate the *last* flip to Two-NRA (integer tile
        // granularity causes brief oscillation near ties).
        let model = CostModel::paper();
        let mm = MatMul::new(2048, 256, 2048);
        let dmin_sq = 256u64 * 256;
        let mut last_flip = None;
        let mut prev_class = None;
        for bs in (1_000..=dmin_sq).step_by(64) {
            if let Some(df) = try_optimize_with(&model, mm, bs) {
                let class = df.class();
                if prev_class == Some(Some(crate::NraClass::Single))
                    && class == Some(crate::NraClass::Two)
                {
                    last_flip = Some(bs);
                }
                prev_class = Some(class);
            }
        }
        let bs = last_flip.expect("crossover must exist below Dmin²");
        // The band is derived with continuous tile sizes; the exact integer
        // optimizer can hold Single-NRA a ceil-step past Dmin²/2. Allow 5%.
        assert!(
            bs > dmin_sq / 4 && bs as f64 <= 1.05 * (dmin_sq / 2) as f64,
            "crossover at {bs}, expected within ({}, ~{}]",
            dmin_sq / 4,
            dmin_sq / 2
        );
        assert_eq!(
            prev_class.flatten(),
            Some(crate::NraClass::Two),
            "Two-NRA must hold at the top of the scan"
        );
    }

    #[test]
    fn admits_accepts_early_upgrades() {
        assert!(BufferRegime::Medium.admits(NraClass::Three));
        assert!(!BufferRegime::Medium.admits(NraClass::Single));
        assert!(BufferRegime::Small.admits(NraClass::Single));
        assert!(BufferRegime::Small.admits(NraClass::Two));
        assert!(BufferRegime::Tiny.admits(NraClass::Two)); // upgrade allowed
    }

    #[test]
    fn display_names() {
        assert_eq!(BufferRegime::Tiny.to_string(), "tiny");
        assert_eq!(BufferRegime::Large.to_string(), "large");
    }
}
