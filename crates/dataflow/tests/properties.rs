//! Property tests for the loop-nest cost model and the principle
//! optimizer: the invariants every higher layer builds on.

use proptest::prelude::*;

use fusecu_dataflow::principles::{try_optimize_with, MIN_BUFFER_ELEMS};
use fusecu_dataflow::{CostModel, LoopNest, NraClass, Tiling};
use fusecu_ir::{MatMul, MmDim, Operand};

fn arb_mm() -> impl Strategy<Value = MatMul> {
    (1u64..256, 1u64..256, 1u64..256).prop_map(|(m, k, l)| MatMul::new(m, k, l))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every tensor streams at least its footprint and at most footprint x
    /// (product of all loop iteration counts).
    #[test]
    fn tensor_traffic_is_bounded(
        mm in arb_mm(),
        tm in 1u64..300, tk in 1u64..300, tl in 1u64..300,
        o in 0usize..6,
    ) {
        let nest = LoopNest::new(LoopNest::orders()[o], Tiling::new(tm, tk, tl));
        let model = CostModel::paper();
        let total_iters: u64 = MmDim::ALL
            .iter()
            .map(|d| nest.tiling.iterations(mm, *d))
            .product();
        for op in Operand::ALL {
            let ma = model.tensor_ma(mm, &nest, op);
            let footprint = mm.tensor_elems(op);
            prop_assert!(ma >= footprint, "{op} below footprint");
            prop_assert!(ma <= footprint * total_iters, "{op} above full re-stream");
        }
    }

    /// The read-write policy never charges less than per-visit, and only
    /// differs on the output.
    #[test]
    fn read_write_dominates_per_visit(mm in arb_mm(), tm in 1u64..300, tk in 1u64..300, tl in 1u64..300, o in 0usize..6) {
        let nest = LoopNest::new(LoopNest::orders()[o], Tiling::new(tm, tk, tl));
        let pv = CostModel::paper().evaluate(mm, &nest);
        let rw = CostModel::read_write().evaluate(mm, &nest);
        prop_assert_eq!(pv.of(Operand::Lhs), rw.of(Operand::Lhs));
        prop_assert_eq!(pv.of(Operand::Rhs), rw.of(Operand::Rhs));
        prop_assert!(rw.of(Operand::Out) >= pv.of(Operand::Out));
    }

    /// Balancing a tiling never changes iteration counts (hence traffic)
    /// and never grows the buffer footprint.
    #[test]
    fn balancing_is_traffic_neutral(mm in arb_mm(), tm in 1u64..300, tk in 1u64..300, tl in 1u64..300) {
        let t = Tiling::new(tm, tk, tl);
        let b = t.balanced(mm);
        for d in MmDim::ALL {
            prop_assert_eq!(t.iterations(mm, d), b.iterations(mm, d));
        }
        prop_assert!(b.buffer_elems(mm) <= t.buffer_elems(mm));
    }

    /// The optimizer's result always fits, always classifies, and is never
    /// below the communication lower bound.
    #[test]
    fn optimizer_invariants(mm in arb_mm(), bs in MIN_BUFFER_ELEMS..100_000) {
        let model = CostModel::paper();
        let best = try_optimize_with(&model, mm, bs).expect("bs >= minimum");
        prop_assert!(best.buffer_elems() <= bs);
        prop_assert!(best.total_ma() >= mm.ideal_ma());
        prop_assert!(best.class().is_some());
        // A Three-NRA result is exactly the lower bound.
        if best.class() == Some(NraClass::Three) {
            prop_assert_eq!(best.total_ma(), mm.ideal_ma());
        }
    }

    /// The optimum is dominated by no single random nest that fits.
    #[test]
    fn no_feasible_nest_beats_the_optimum(
        mm in arb_mm(),
        bs in MIN_BUFFER_ELEMS..50_000,
        tm in 1u64..300, tk in 1u64..300, tl in 1u64..300,
        o in 0usize..6,
    ) {
        let model = CostModel::paper();
        let best = try_optimize_with(&model, mm, bs).expect("bs >= minimum");
        let nest = LoopNest::new(LoopNest::orders()[o], Tiling::new(tm, tk, tl));
        if nest.tiling.fits(mm, bs) {
            prop_assert!(
                model.evaluate(mm, &nest).total() >= best.total_ma(),
                "random nest {} beats claimed optimum {}", nest, best
            );
        }
    }

    /// Buffer monotonicity: more buffer never increases optimal MA.
    #[test]
    fn optimum_is_monotone_in_buffer(mm in arb_mm(), bs in MIN_BUFFER_ELEMS..50_000, extra in 0u64..50_000) {
        let model = CostModel::paper();
        let small = try_optimize_with(&model, mm, bs).unwrap().total_ma();
        let large = try_optimize_with(&model, mm, bs + extra).unwrap().total_ma();
        prop_assert!(large <= small);
    }

    /// Transposition symmetry of the optimum.
    #[test]
    fn optimum_is_transpose_symmetric(mm in arb_mm(), bs in MIN_BUFFER_ELEMS..50_000) {
        let model = CostModel::paper();
        let a = try_optimize_with(&model, mm, bs).unwrap().total_ma();
        let b = try_optimize_with(&model, mm.transposed(), bs).unwrap().total_ma();
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The rank-N einsum model reproduces the matmul model exactly on its
    /// 3-dimensional special case, for random nests.
    #[test]
    fn einsum_matmul_equivalence(
        m in 1u64..64, k in 1u64..64, l in 1u64..64,
        tm in 1u64..80, tk in 1u64..80, tl in 1u64..80,
        o in 0usize..6,
    ) {
        use fusecu_dataflow::einsum::{EinsumNest, EinsumSpec};
        let mm = MatMul::new(m, k, l);
        let spec = EinsumSpec::matmul(m, k, l);
        let order3 = LoopNest::orders()[o];
        let tiling = Tiling::new(tm, tk, tl);
        let nest3 = LoopNest::new(order3, tiling);
        let idx = |d: MmDim| match d {
            MmDim::M => 0usize,
            MmDim::K => 1,
            MmDim::L => 2,
        };
        let nest = EinsumNest {
            order: order3.iter().map(|d| idx(*d)).collect(),
            tiles: vec![tm, tk, tl],
        };
        let model = CostModel::paper();
        let expected = model.evaluate(mm, &nest3);
        let per: Vec<u64> = spec
            .tensors()
            .iter()
            .map(|t| spec.tensor_ma(&model, &nest, t))
            .collect();
        prop_assert_eq!(per[0], expected.of(Operand::Lhs));
        prop_assert_eq!(per[1], expected.of(Operand::Rhs));
        prop_assert_eq!(per[2], expected.of(Operand::Out));
        // Footprints agree too.
        prop_assert_eq!(spec.buffer_elems(&nest), tiling.buffer_elems(mm));
    }
}

#[test]
fn render_names_every_loop_and_tensor() {
    let mm = MatMul::new(1024, 768, 768);
    let df = fusecu_dataflow::principles::optimize(mm, 512 * 1024);
    let text = df.render();
    for needle in ["for m1", "for k1", "for l1", "# A:", "# B:", "# C:", "untiled"] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}
