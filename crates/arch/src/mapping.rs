//! The §IV-A mapping rule: classify the fused intermediate's tile shape
//! and recommend the fused mapping.
//!
//! The paper distinguishes two optimal tile shapes for the intermediate
//! tensor `C` in profitable fused dataflows:
//!
//! * **tile-like** (Fig 4(a), (c), (e)): both of `C`'s tile dimensions are
//!   maximized or untiled — suited to being the *stationary tile* of tile
//!   fusion (it matches the array);
//! * **column-like** (Fig 4(b), (d)): one dimension maximized, the other
//!   minimized — mapped as a stationary tile it would waste the array, so
//!   it becomes the *moving tile* of column fusion.
//!
//! [`recommended_mapping`] encodes the rule; tests confirm the
//! cycle-optimal choice made by [`crate::fused::FusedPerf`] agrees with it
//! on the paper's canonical shapes.

use std::fmt;

use fusecu_fusion::{FusedDataflow, FusedDim};

use crate::fused::FusedMapping;

/// The §IV-A intermediate-tile classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntermediateShape {
    /// Both tile dimensions sizeable (square-ish): stationary-tile
    /// material.
    TileLike,
    /// One dimension at (or near) the minimum: moving-tile material.
    ColumnLike,
}

impl fmt::Display for IntermediateShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IntermediateShape::TileLike => "tile-like",
            IntermediateShape::ColumnLike => "column-like",
        })
    }
}

/// Classifies the intermediate tile of a fused dataflow.
///
/// A dimension counts as *minimized* when its tile is at most 1/16 of the
/// other's (the Principle 2 "maximize one, minimize the other" signature);
/// otherwise the tile is considered square-ish and tile-like.
pub fn classify_intermediate(fused: &FusedDataflow) -> IntermediateShape {
    let pair = fused.pair();
    let t_m = fused.nest().tiling.clamped_tile(&pair, FusedDim::M);
    let t_l = fused.nest().tiling.clamped_tile(&pair, FusedDim::L);
    let (small, large) = (t_m.min(t_l), t_m.max(t_l));
    if small * 16 <= large {
        IntermediateShape::ColumnLike
    } else {
        IntermediateShape::TileLike
    }
}

/// The paper's recommended fused mapping for a dataflow's intermediate
/// shape: tile fusion for tile-like, column fusion for column-like.
pub fn recommended_mapping(fused: &FusedDataflow) -> FusedMapping {
    match classify_intermediate(fused) {
        IntermediateShape::TileLike => FusedMapping::Tile,
        IntermediateShape::ColumnLike => FusedMapping::Column,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::FusedPerf;
    use crate::spec::ArraySpec;
    use fusecu_dataflow::CostModel;
    use fusecu_fusion::{optimize_pair, FusedPair};
    use fusecu_ir::MatMul;

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    fn fused_for(m: u64, k: u64, l: u64, n: u64, bs: u64) -> Option<FusedDataflow> {
        let pair = FusedPair::try_new(MatMul::new(m, k, l), MatMul::new(m, l, n)).unwrap();
        optimize_pair(&MODEL, pair, bs)
    }

    #[test]
    fn infeasible_buffer_is_reported_not_fatal() {
        // Regression: this helper used to unwrap, so probing a sub-minimal
        // buffer aborted the test binary instead of reporting None.
        assert!(fused_for(128, 4096, 128, 4096, 2).is_none());
    }

    #[test]
    fn paper_fig5_tile_example_is_tile_like() {
        // Fig 5(a)'s example: A(128,1) x B(1,128) = C(128,128), then
        // C x D(128,1) = E(128,1) — the Single-NRA fused shape with a
        // square 128x128 intermediate. A tiny buffer forces the square
        // stationary tile.
        let fused = fused_for(128, 4096, 128, 4096, 40_000).expect("40k elems fit a tile");
        assert_eq!(classify_intermediate(&fused), IntermediateShape::TileLike);
        assert_eq!(recommended_mapping(&fused), FusedMapping::Tile);
    }

    #[test]
    fn paper_fig5_column_example_is_column_like() {
        // Fig 5(b)'s example: A(128,128) x B(128,1) = C(128,1) — the
        // Two-NRA fused shape with a column intermediate.
        let fused =
            fused_for(1024, 64, 1024, 64, 512 * 1024).expect("512k elems fit a column tile");
        assert_eq!(classify_intermediate(&fused), IntermediateShape::ColumnLike);
        assert_eq!(recommended_mapping(&fused), FusedMapping::Column);
    }

    #[test]
    fn cycle_optimal_choice_agrees_on_canonical_shapes() {
        let spec = ArraySpec::paper_default();
        // Batched array-matched tile-fusion shape.
        let tile = fused_for(128, 4096, 128, 4096, 40_000).expect("40k elems fit a tile");
        let perf = FusedPerf::score(&spec, tile, 8);
        assert_eq!(perf.mapping(), recommended_mapping(&tile));
        // Attention column-fusion shape.
        let col = fused_for(1024, 64, 1024, 64, spec.buffer_elems)
            .expect("paper-default buffer fits a column tile");
        let perf = FusedPerf::score(&spec, col, 192);
        assert_eq!(perf.mapping(), recommended_mapping(&col));
    }

    #[test]
    fn display_names() {
        assert_eq!(IntermediateShape::TileLike.to_string(), "tile-like");
        assert_eq!(IntermediateShape::ColumnLike.to_string(), "column-like");
    }
}
