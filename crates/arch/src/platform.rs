//! The five evaluated platforms and their Table III attributes.

use std::fmt;

use crate::flex::TilingFlex;
use crate::stationary::Stationary;

/// An evaluated spatial-accelerator platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Platform {
    /// Google TPUv4i \[5\]: rigid weight-stationary systolic arrays.
    Tpuv4i,
    /// Gemmini \[16\]: stationary-flexible PEs (WS/OS), rigid array shape.
    Gemmini,
    /// Planaria \[17\]: dynamic array fission, weight-stationary.
    Planaria,
    /// FuseCU without tensor fusion (the paper's ablation design).
    UnfCu,
    /// The paper's contribution: XS PEs + CU reshaping + operator fusion.
    FuseCu,
}

impl Platform {
    /// All platforms, in the paper's comparison order.
    pub const ALL: [Platform; 5] = [
        Platform::Tpuv4i,
        Platform::Gemmini,
        Platform::Planaria,
        Platform::UnfCu,
        Platform::FuseCu,
    ];

    /// The PE-level stationaries the platform supports (Table III
    /// "Stationary Flex.").
    pub fn stationaries(self) -> &'static [Stationary] {
        match self {
            Platform::Tpuv4i | Platform::Planaria => &[Stationary::Ws],
            Platform::Gemmini => &[Stationary::Ws, Stationary::Os],
            Platform::UnfCu | Platform::FuseCu => {
                &[Stationary::Ws, Stationary::Os, Stationary::Is]
            }
        }
    }

    /// The tiling-flexibility grade (Table III "Tiling Flex.").
    pub fn tiling_flex(self) -> TilingFlex {
        match self {
            Platform::Tpuv4i | Platform::Gemmini => TilingFlex::Low,
            Platform::Planaria => TilingFlex::High,
            Platform::UnfCu | Platform::FuseCu => TilingFlex::Middle,
        }
    }

    /// Whether the platform fuses tensor operators on the compute units
    /// (Table III "Tensor Fusion").
    pub fn supports_fusion(self) -> bool {
        matches!(self, Platform::FuseCu)
    }

    /// Whether the platform's *buffer-level* tile sizes are restricted to
    /// array-aligned multiples. Rigid systolic designs stage weights in
    /// array-shaped panels; reshape-capable and fission-capable fabrics
    /// tile freely.
    pub fn array_aligned_tiles(self) -> bool {
        self.tiling_flex() == TilingFlex::Low
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Tpuv4i => "TPUv4i",
            Platform::Gemmini => "Gemmini",
            Platform::Planaria => "Planaria",
            Platform::UnfCu => "UnfCU",
            Platform::FuseCu => "FuseCU",
        }
    }

    /// One Table III row: `(name, stationary flex, tiling flex, fusion)`.
    pub fn table_iii_row(self) -> (&'static str, String, &'static str, bool) {
        let stat = if self.stationaries().len() > 1 {
            "yes".to_string()
        } else {
            "no".to_string()
        };
        (self.name(), stat, self.tiling_flex().name(), self.supports_fusion())
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_attributes() {
        use Platform::*;
        assert_eq!(Tpuv4i.stationaries(), &[Stationary::Ws]);
        assert_eq!(Gemmini.stationaries(), &[Stationary::Ws, Stationary::Os]);
        assert_eq!(Planaria.stationaries(), &[Stationary::Ws]);
        assert_eq!(UnfCu.stationaries().len(), 3);
        assert_eq!(FuseCu.stationaries().len(), 3);

        assert_eq!(Tpuv4i.tiling_flex(), TilingFlex::Low);
        assert_eq!(Gemmini.tiling_flex(), TilingFlex::Low);
        assert_eq!(Planaria.tiling_flex(), TilingFlex::High);
        assert_eq!(UnfCu.tiling_flex(), TilingFlex::Middle);
        assert_eq!(FuseCu.tiling_flex(), TilingFlex::Middle);

        assert!(FuseCu.supports_fusion());
        assert!(Platform::ALL.iter().filter(|p| p.supports_fusion()).count() == 1);
    }

    #[test]
    fn only_rigid_platforms_align_tiles() {
        assert!(Platform::Tpuv4i.array_aligned_tiles());
        assert!(Platform::Gemmini.array_aligned_tiles());
        assert!(!Platform::Planaria.array_aligned_tiles());
        assert!(!Platform::FuseCu.array_aligned_tiles());
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = Platform::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["TPUv4i", "Gemmini", "Planaria", "UnfCU", "FuseCU"]);
    }
}
