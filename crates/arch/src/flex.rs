//! Tiling (spatial-shape) flexibility menus and the per-tile cycle kernel.
//!
//! The paper's Table III grades platforms by "tiling flexibility": how
//! freely the stationary tile can be shaped on the PE fabric.
//!
//! * **Low** (TPUv4i, Gemmini): one rigid `N×N` logical array per CU; a
//!   stationary dimension smaller than `N` leaves rows or columns idle.
//! * **Middle** (UnfCU, FuseCU): the four CUs rewire into square, wide, or
//!   narrow fabrics (Fig 7(c–e)), giving per-CU effective shapes `N×N`,
//!   `2N×N/2`, and `N/2×2N` — the paper's "untiled dimension size of up to
//!   2N" with no PE count change.
//! * **High** (Planaria): array fission into sub-arrays at a 16-PE
//!   granularity; several sub-arrays process different spatial tiles
//!   concurrently, recovering utilization for small dimensions at the cost
//!   of the paper-reported interconnect overhead (Fig 12).

use std::fmt;

use crate::spec::ArraySpec;

/// Planaria's fission granularity (PEs per sub-array edge).
pub const FISSION_GRAIN: u64 = 16;

/// Tiling-flexibility grade (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TilingFlex {
    /// Rigid `N×N` array.
    Low,
    /// Square / wide / narrow CU reshapes.
    Middle,
    /// Arbitrary fission into 16-granular sub-arrays.
    High,
}

impl TilingFlex {
    /// The per-CU logical array shapes this grade offers, `(rows, cols)`.
    pub fn shapes(self, spec: &ArraySpec) -> Vec<(u64, u64)> {
        let n = spec.pe_dim;
        match self {
            TilingFlex::Low => vec![(n, n)],
            TilingFlex::Middle => vec![(n, n), (2 * n, n / 2), (n / 2, 2 * n)],
            TilingFlex::High => {
                // 16-granular sub-array shapes with edges up to N; the
                // remaining PEs host further sub-arrays (see
                // [`TilingFlex::concurrency`]).
                let mut out = Vec::new();
                let mut a = FISSION_GRAIN;
                while a <= n {
                    let b = ((n * n / a).min(n)) / FISSION_GRAIN * FISSION_GRAIN;
                    if b >= FISSION_GRAIN {
                        out.push((a, b));
                    }
                    a += FISSION_GRAIN;
                }
                out
            }
        }
    }

    /// How many sub-arrays of shape `(a, b)` run concurrently per CU.
    ///
    /// Only fission (High) replicates; the other grades always drive one
    /// logical array per CU.
    pub fn concurrency(self, spec: &ArraySpec, a: u64, b: u64) -> u64 {
        match self {
            TilingFlex::High => (spec.pe_dim * spec.pe_dim / (a * b)).max(1),
            _ => 1,
        }
    }

    /// Table III grade name.
    pub fn name(self) -> &'static str {
        match self {
            TilingFlex::Low => "low",
            TilingFlex::Middle => "middle",
            TilingFlex::High => "high",
        }
    }
}

impl fmt::Display for TilingFlex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Compute cycles for streaming one matmul-shaped workload through a
/// logical `a × b` array: the stationary tile spans `(d1, d2)`, the moving
/// dimension has depth `d3`, and each spatial tile pays systolic fill and
/// drain of `a + b` cycles on top of its `d3` streaming beats.
///
/// `concurrency` sub-arrays process distinct spatial tiles in parallel.
pub fn stream_cycles(d1: u64, d2: u64, d3: u64, a: u64, b: u64, concurrency: u64) -> u64 {
    let tiles = d1.div_ceil(a) * d2.div_ceil(b);
    tiles.div_ceil(concurrency) * (d3 + a + b)
}

/// The best (minimum-cycle) mapping of a stationary-tile workload for a
/// flexibility grade: returns `(cycles, shape)`.
pub fn best_mapping(
    flex: TilingFlex,
    spec: &ArraySpec,
    d1: u64,
    d2: u64,
    d3: u64,
) -> (u64, (u64, u64)) {
    flex.shapes(spec)
        .into_iter()
        .map(|(a, b)| {
            let c = flex.concurrency(spec, a, b);
            (stream_cycles(d1, d2, d3, a, b, c), (a, b))
        })
        .min()
        .expect("every grade offers at least one shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArraySpec {
        ArraySpec::paper_default()
    }

    #[test]
    fn shape_menus_conserve_pes() {
        let s = spec();
        for flex in [TilingFlex::Low, TilingFlex::Middle] {
            for (a, b) in flex.shapes(&s) {
                assert_eq!(a * b, s.pe_dim * s.pe_dim, "{flex}: {a}x{b}");
            }
        }
        for (a, b) in TilingFlex::High.shapes(&s) {
            assert!(a * b <= s.pe_dim * s.pe_dim);
            assert_eq!(a % FISSION_GRAIN, 0);
        }
    }

    #[test]
    fn middle_supports_2n_dimension() {
        let s = spec();
        let max_edge = TilingFlex::Middle
            .shapes(&s)
            .into_iter()
            .map(|(a, b)| a.max(b))
            .max()
            .unwrap();
        assert_eq!(max_edge, 2 * s.pe_dim);
    }

    #[test]
    fn stream_cycles_counts_fill_and_drain() {
        // One 128x128 tile streaming 1000 beats: 1000 + 256 cycles.
        assert_eq!(stream_cycles(128, 128, 1000, 128, 128, 1), 1256);
        // Two tiles along d2.
        assert_eq!(stream_cycles(128, 200, 1000, 128, 128, 1), 2 * 1256);
        // Concurrency 2 halves the sequential tile count.
        assert_eq!(stream_cycles(128, 200, 1000, 128, 128, 2), 1256);
    }

    #[test]
    fn small_dimension_prefers_reshaped_fabric() {
        // Stationary tile 64 x 2048 (e.g. a BERT attention weight slice):
        // the rigid 128x128 array wastes half its rows; the wide 64-row
        // reshape (N/2 x 2N) fits exactly.
        let s = spec();
        let (low, _) = best_mapping(TilingFlex::Low, &s, 64, 2048, 512);
        let (mid, shape) = best_mapping(TilingFlex::Middle, &s, 64, 2048, 512);
        assert!(mid < low, "middle {mid} vs low {low}");
        assert_eq!(shape, (64, 256));
    }

    #[test]
    fn fission_recovers_tiny_tiles() {
        // 32 x 32 stationary tile: fission runs 16 sub-arrays of 32x32.
        let s = spec();
        let (high, _) = best_mapping(TilingFlex::High, &s, 256, 256, 64);
        let (low, _) = best_mapping(TilingFlex::Low, &s, 256, 256, 64);
        assert!(high <= low);
    }

    #[test]
    fn best_mapping_prefers_fewer_cycles() {
        let s = spec();
        // A square large tile: every grade should land on full-fabric work.
        let (low, shape) = best_mapping(TilingFlex::Low, &s, 1024, 1024, 1024);
        assert_eq!(shape, (128, 128));
        assert_eq!(low, 64 * (1024 + 256));
    }
}
