//! Closed-form latency model for buffer-level loop nests: the Fig 8 cycle
//! template applied per tile.
//!
//! [`crate::intra`] prices whole layers *after* choosing a spatial mapping;
//! this module prices a **given** loop nest, so a searcher can rank nests
//! by cycles instead of traffic — a genuinely different objective. The
//! template is the one [`crate::intra::select_op`] uses: every buffer tile
//! streams its moving dimension through the PE array with systolic
//! fill/drain ([`stream_cycles`]), compute overlaps the memory port, and
//! the nest's latency is `max(compute, DRAM)` cycles.
//!
//! Like the traffic fast path in `fusecu-sim`, the tile sum is closed-form:
//! each dimension splits into `count − 1` interior tiles of the full span
//! plus one (possibly ragged) edge tile, so all `Π countᵢ` tiles price in
//! `2^dims` products — no loop over tiles.
//!
//! The model is deliberately single-CU: a nest describes one compute
//! unit's buffer schedule, and a scalar fitness only needs relative cost.
//! DRAM cycles divide the nest's *analytical* memory access by the spec's
//! effective bandwidth, so the objective stays consistent with the MA
//! model the rest of the reproduction is built on.

use fusecu_dataflow::{CostModel, LoopNest};
use fusecu_fusion::{FusedNest, FusedPair};
use fusecu_ir::{MatMul, MmDim};

use crate::flex::stream_cycles;
use crate::spec::ArraySpec;

/// `(count, span)` classes of one tiled dimension: `count − 1` interior
/// tiles of the full (clamped) span plus one edge tile.
fn classes(dim: u64, tile: u64) -> [(u64, u64); 2] {
    let full = tile.min(dim);
    let count = dim.div_ceil(full);
    [(count - 1, full), (1, dim - (count - 1) * full)]
}

/// Compute cycles to stream one `sm × sk × sl` matmul tile through a
/// single `pe_dim × pe_dim` CU: `K × L` spatial, `M` moving (the WS
/// template), fill/drain included.
fn tile_cycles(spec: &ArraySpec, sm: u64, sk: u64, sl: u64) -> u64 {
    stream_cycles(sk, sl, sm, spec.pe_dim, spec.pe_dim, 1)
}

/// Total compute cycles of replaying `nest` on one CU: every buffer tile
/// streams once; the interior/edge decomposition prices all
/// `count_m · count_k · count_l` tiles in eight closed-form terms.
pub fn nest_compute_cycles(spec: &ArraySpec, mm: MatMul, nest: &LoopNest) -> u64 {
    let cm = classes(mm.m(), nest.tiling.tile(MmDim::M));
    let ck = classes(mm.k(), nest.tiling.tile(MmDim::K));
    let cl = classes(mm.l(), nest.tiling.tile(MmDim::L));
    let mut cycles = 0u64;
    for (nm, sm) in cm {
        for (nk, sk) in ck {
            for (nl, sl) in cl {
                cycles += nm * nk * nl * tile_cycles(spec, sm, sk, sl);
            }
        }
    }
    cycles
}

/// Latency of `nest` in cycles: compute overlapped with the memory port
/// (`max(compute, DRAM)`), DRAM cycles from the analytical MA model under
/// `model`'s accounting.
pub fn nest_latency(spec: &ArraySpec, model: &CostModel, mm: MatMul, nest: &LoopNest) -> u64 {
    let dram = model
        .evaluate(mm, nest)
        .total()
        .div_ceil(spec.bw_elems_per_cycle);
    nest_compute_cycles(spec, mm, nest).max(dram)
}

/// Total compute cycles of replaying a fused nest on one CU: every shared
/// tile runs its full producer phase (`sm × sk × sl` tiles) and consumer
/// phase (`sm × sl × sn` tiles, the resident `C` tile against `D`).
pub fn fused_compute_cycles(spec: &ArraySpec, pair: &FusedPair, nest: &FusedNest) -> u64 {
    use fusecu_fusion::FusedDim;
    let cls = |d: FusedDim| classes(pair.dim(d), nest.tiling.clamped_tile(pair, d));
    let cm = cls(FusedDim::M);
    let ck = cls(FusedDim::K);
    let cl = cls(FusedDim::L);
    let cn = cls(FusedDim::N);
    let mut cycles = 0u64;
    for (nm, sm) in cm {
        for (nl, sl) in cl {
            for (nk, sk) in ck {
                cycles += nm * nl * nk * tile_cycles(spec, sm, sk, sl);
            }
            for (nn, sn) in cn {
                cycles += nm * nl * nn * tile_cycles(spec, sm, sl, sn);
            }
        }
    }
    cycles
}

/// Latency of a fused nest in cycles: `max(compute, DRAM)` with DRAM from
/// the fused MA model (external tensors only — the intermediate stays
/// on-chip, which is exactly what this objective should reward).
pub fn fused_latency(
    spec: &ArraySpec,
    model: &CostModel,
    pair: &FusedPair,
    nest: &FusedNest,
) -> u64 {
    let dram = nest
        .evaluate(model, pair)
        .total()
        .div_ceil(spec.bw_elems_per_cycle);
    fused_compute_cycles(spec, pair, nest).max(dram)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_dataflow::Tiling;
    use fusecu_fusion::FusedTiling;
    use fusecu_ir::MmDim::{K, L, M};

    fn model() -> CostModel {
        CostModel::paper()
    }

    /// Brute-force reference: walk every tile and sum `tile_cycles`.
    fn nest_cycles_by_walk(spec: &ArraySpec, mm: MatMul, nest: &LoopNest) -> u64 {
        let geom = |d: MmDim| {
            let dim = mm.dim(d);
            let t = nest.tiling.tile(d).min(dim);
            (dim.div_ceil(t), t, dim)
        };
        let span = |(count, t, dim): (u64, u64, u64), i: u64| {
            if i + 1 == count {
                dim - (count - 1) * t
            } else {
                t
            }
        };
        let (gm, gk, gl) = (geom(M), geom(K), geom(L));
        let mut cycles = 0u64;
        for im in 0..gm.0 {
            for ik in 0..gk.0 {
                for il in 0..gl.0 {
                    cycles +=
                        tile_cycles(spec, span(gm, im), span(gk, ik), span(gl, il));
                }
            }
        }
        cycles
    }

    #[test]
    fn closed_form_matches_per_tile_walk() {
        let spec = ArraySpec::paper_default();
        let mm = MatMul::new(300, 130, 257);
        for order in LoopNest::orders() {
            for tiling in [
                Tiling::new(128, 128, 128), // ragged everywhere
                Tiling::new(300, 130, 257), // single tile
                Tiling::new(1, 130, 64),    // unit M, untiled K
                Tiling::new(7, 11, 13),
            ] {
                let nest = LoopNest::new(order, tiling);
                assert_eq!(
                    nest_compute_cycles(&spec, mm, &nest),
                    nest_cycles_by_walk(&spec, mm, &nest),
                    "order {order:?} tiling {tiling}"
                );
            }
        }
    }

    #[test]
    fn fewer_fuller_tiles_cost_fewer_compute_cycles() {
        // Fill/drain is paid per tile, so shredding a dimension into unit
        // tiles must cost strictly more compute than streaming it whole.
        let spec = ArraySpec::paper_default();
        let mm = MatMul::new(48, 40, 32);
        let order = [M, K, L];
        let whole = LoopNest::new(order, Tiling::new(48, 40, 32));
        let shredded = LoopNest::new(order, Tiling::new(48, 40, 1));
        assert!(
            nest_compute_cycles(&spec, mm, &whole)
                < nest_compute_cycles(&spec, mm, &shredded)
        );
    }

    #[test]
    fn latency_switches_to_dram_bound_under_starved_bandwidth() {
        let mm = MatMul::new(48, 40, 32);
        let nest = LoopNest::new([M, K, L], Tiling::new(24, 20, 32));
        let fast_port = ArraySpec::paper_default();
        let starved = ArraySpec {
            bw_elems_per_cycle: 1,
            ..fast_port
        };
        let compute = nest_compute_cycles(&fast_port, mm, &nest);
        assert_eq!(nest_latency(&fast_port, &model(), mm, &nest), compute);
        let ma = model().evaluate(mm, &nest).total();
        assert_eq!(nest_latency(&starved, &model(), mm, &nest), ma.max(compute));
        assert!(ma > compute, "starved port must be DRAM-bound");
    }

    #[test]
    fn fused_latency_is_positive_and_monotone_in_tile_count() {
        let spec = ArraySpec::paper_default();
        let pair = FusedPair::try_new(MatMul::new(32, 24, 40), MatMul::new(32, 40, 16))
            .unwrap();
        let whole = FusedNest::new(true, FusedTiling::new(32, 24, 40, 16));
        let shredded = FusedNest::new(true, FusedTiling::new(1, 24, 40, 16));
        let lw = fused_latency(&spec, &model(), &pair, &whole);
        let ls = fused_latency(&spec, &model(), &pair, &shredded);
        assert!(lw > 0);
        assert!(
            fused_compute_cycles(&spec, &pair, &whole)
                < fused_compute_cycles(&spec, &pair, &shredded)
        );
        let _ = (lw, ls);
    }
}
