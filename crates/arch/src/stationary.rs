//! PE-level stationary choices (which operand lives in the PE registers).

use std::fmt;

use fusecu_ir::{MmDim, Operand};

/// The operand held in the PE array's registers during computation.
///
/// The stationary tensor's two dimensions map across the PE array (the
/// "stationary tile" of §IV-A); the third dimension streams through
/// ("moving tile").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stationary {
    /// Weight-stationary: `B[K,L]` resident (classic systolic arrays).
    Ws,
    /// Output-stationary: `C[M,L]` resident, accumulating in place.
    Os,
    /// Input-stationary: `A[M,K]` resident.
    Is,
}

impl Stationary {
    /// All three stationaries.
    pub const ALL: [Stationary; 3] = [Stationary::Ws, Stationary::Os, Stationary::Is];

    /// The operand this stationary keeps in PE registers.
    pub fn operand(self) -> Operand {
        match self {
            Stationary::Ws => Operand::Rhs,
            Stationary::Os => Operand::Out,
            Stationary::Is => Operand::Lhs,
        }
    }

    /// The stationary for a given resident operand.
    pub fn for_operand(op: Operand) -> Stationary {
        match op {
            Operand::Rhs => Stationary::Ws,
            Operand::Out => Stationary::Os,
            Operand::Lhs => Stationary::Is,
        }
    }

    /// The two dimensions mapped across the PE array.
    pub fn array_dims(self) -> [MmDim; 2] {
        self.operand().dims()
    }

    /// The streamed (moving) dimension.
    pub fn moving_dim(self) -> MmDim {
        self.operand().missing_dim()
    }

    /// Conventional abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            Stationary::Ws => "WS",
            Stationary::Os => "OS",
            Stationary::Is => "IS",
        }
    }
}

impl fmt::Display for Stationary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_round_trip() {
        for s in Stationary::ALL {
            assert_eq!(Stationary::for_operand(s.operand()), s);
        }
    }

    #[test]
    fn dims_partition() {
        for s in Stationary::ALL {
            let [a, b] = s.array_dims();
            let m = s.moving_dim();
            let mut all = vec![a, b, m];
            all.sort();
            assert_eq!(all, vec![MmDim::M, MmDim::K, MmDim::L]);
        }
    }

    #[test]
    fn classic_assignments() {
        assert_eq!(Stationary::Ws.array_dims(), [MmDim::K, MmDim::L]);
        assert_eq!(Stationary::Ws.moving_dim(), MmDim::M);
        assert_eq!(Stationary::Os.moving_dim(), MmDim::K);
        assert_eq!(Stationary::Is.moving_dim(), MmDim::L);
        assert_eq!(Stationary::Os.to_string(), "OS");
    }
}
