//! A first-order energy model: the paper's §I motivation ("memory access
//! is … a key factor in the energy consumption") made quantitative.
//!
//! Energy is dominated by two terms at this granularity: DRAM traffic and
//! MAC operations. Per-element constants follow the widely-cited 28/45 nm
//! accelerator energy surveys (DRAM ≈ 100–200× an INT8 MAC; on-chip SRAM
//! another order below DRAM). Because every platform executes identical
//! MACs, *all* energy differences in a comparison come from the memory
//! traffic the dataflow optimization removes — which is exactly the
//! paper's argument.

use crate::eval::GraphPerf;

/// Per-operation energy constants, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per element (byte) moved to or from DRAM.
    pub dram_pj_per_elem: f64,
    /// Energy per INT8 multiply-accumulate.
    pub mac_pj: f64,
}

impl EnergyModel {
    /// Representative 28 nm constants: 15 pJ/B DRAM, 0.1 pJ/MAC (INT8).
    pub fn nm28() -> EnergyModel {
        EnergyModel {
            dram_pj_per_elem: 15.0,
            mac_pj: 0.1,
        }
    }

    /// Total energy of an evaluated graph execution, in microjoules.
    pub fn graph_energy_uj(&self, perf: &GraphPerf) -> f64 {
        let pj = perf.total_ma() as f64 * self.dram_pj_per_elem
            + perf.total_macs() as f64 * self.mac_pj;
        pj / 1e6
    }

    /// Fraction of the energy spent on DRAM traffic.
    pub fn dram_share(&self, perf: &GraphPerf) -> f64 {
        let dram = perf.total_ma() as f64 * self.dram_pj_per_elem;
        let mac = perf.total_macs() as f64 * self.mac_pj;
        dram / (dram + mac)
    }
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel::nm28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_graph;
    use crate::platform::Platform;
    use crate::spec::ArraySpec;
    use fusecu_dataflow::CostModel;
    use fusecu_models::zoo;

    #[test]
    fn fusecu_saves_energy_on_every_model() {
        let spec = ArraySpec::paper_default();
        let model = CostModel::read_write();
        let e = EnergyModel::nm28();
        for cfg in zoo::all() {
            let g = cfg.build_graph();
            let tpu = evaluate_graph(&spec, Platform::Tpuv4i, &model, &g);
            let fuse = evaluate_graph(&spec, Platform::FuseCu, &model, &g);
            let saving = 1.0 - e.graph_energy_uj(&fuse) / e.graph_energy_uj(&tpu);
            assert!(saving > 0.0, "{}: no energy saving", cfg.name);
            // MACs are identical, so the saving is bounded by the DRAM share.
            assert!(saving <= e.dram_share(&tpu) + 1e-9, "{}", cfg.name);
        }
    }

    #[test]
    fn energy_is_positive_and_dram_share_in_unit_interval() {
        let spec = ArraySpec::paper_default();
        let model = CostModel::read_write();
        let e = EnergyModel::default();
        let g = zoo::blenderbot().build_graph();
        let perf = evaluate_graph(&spec, Platform::Gemmini, &model, &g);
        assert!(e.graph_energy_uj(&perf) > 0.0);
        let share = e.dram_share(&perf);
        assert!((0.0..=1.0).contains(&share));
    }
}
