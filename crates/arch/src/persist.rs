//! Disk persistence for the arch- and fusion-level memo caches.
//!
//! Reuses the versioned, fingerprinted [`fusecu_dataflow::persist`] file
//! format for the two caches that live above the intra-operator sweep:
//!
//! * the **operator cache** ([`crate::intra`]): per
//!   `(mm, platform, pe_dim, buffer, model)` key, the bandwidth-independent
//!   candidate list (stationary, CU shape, panel dataflow, unit compute
//!   cycles) that [`crate::intra::select_op`] re-scores per bandwidth;
//! * the **fusion caches** ([`fusecu_fusion`]): the memoized fused-pair
//!   optima and whole-chain plans.
//!
//! As in the search-level format, records store reconstruction inputs
//! (shapes, loop orders, tile sizes) and re-derive costs through the cost
//! model on load, except the operator cache's `unit_compute_cycles`, whose
//! recomputation is exactly the expensive mapping search the cache exists
//! to skip — it is stored verbatim and guarded by the file checksum.
//! Because those verbatim cycles come out of the mapping/cycle model, the
//! arch files are stamped with [`arch_fingerprint`]: the base fingerprint
//! extended with a behavioral digest of [`best_mapping`] over a probe
//! grid. If the mapping or cycle equations change — even without a crate
//! version bump — the digest changes and every arch cache file becomes a
//! cold start instead of serving stale cycle counts.
//! Loading is all-or-nothing per file and every anomaly is a cold start.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io;
use std::path::Path;
use std::sync::OnceLock;

use fusecu_dataflow::persist::{
    decode_dataflow, decode_mm, decode_model, encode_dataflow, encode_mm, encode_model,
    fingerprint_with, CacheFile, RecordReader,
};
use fusecu_dataflow::CostModel;
use fusecu_fusion::graph_planner::{
    graph_cache_preload, graph_cache_snapshot, try_plan_dag, GraphKey, GraphPlan, GraphStep,
};
use fusecu_fusion::planner::{
    plan_cache_preload, plan_cache_snapshot, ChainPlan, ChainStep, PlanKey,
};
use fusecu_fusion::{
    optimizer::{pair_cache_preload, pair_cache_snapshot},
    ChainNest, FusedChain, FusedChainDataflow, FusedDataflow, FusedDim, FusedNest, FusedPair,
    FusedTiling, PairKey,
};
use fusecu_ir::{FuseLink, MatMul, MmChain, MmDag, NodeId, OpGraph};

use crate::flex::{best_mapping, TilingFlex};
use crate::intra::{op_cache_preload, op_cache_snapshot, OpCandidate, TileKey};
use crate::platform::Platform;
use crate::spec::ArraySpec;
use crate::stationary::Stationary;

const SECTION_OPERATORS: &str = "operators";
const SECTION_PAIRS: &str = "pairs";
const SECTION_PLANS: &str = "plans";
const SECTION_GRAPHS: &str = "graphs";

/// A behavioral digest of the mapping/cycle model: [`best_mapping`]'s
/// chosen `(cycles, shape)` over every flexibility grade on a fixed probe
/// grid of workload extents, at the paper's architecture point. Any change
/// to the stream-cycle equations or the shape menus changes this value.
pub fn mapping_model_digest() -> String {
    static DIGEST: OnceLock<String> = OnceLock::new();
    DIGEST
        .get_or_init(|| {
            let spec = ArraySpec::paper_default();
            let mut h = DefaultHasher::new();
            for flex in [TilingFlex::Low, TilingFlex::Middle, TilingFlex::High] {
                // Extents exercising under-filled, exact, and ragged tiles.
                for (d1, d2, d3) in [(1u64, 1, 1), (96, 128, 64), (128, 128, 1024), (200, 40, 7)] {
                    best_mapping(flex, &spec, d1, d2, d3).hash(&mut h);
                }
            }
            format!("mapping-{:016x}", h.finish())
        })
        .clone()
}

/// The fingerprint stamped on arch-level cache files: the base format
/// fingerprint (crate/format version + cost-model digest) extended with
/// [`mapping_model_digest`].
pub fn arch_fingerprint() -> String {
    fingerprint_with(&mapping_model_digest())
}

fn encode_stationary(s: Stationary) -> u64 {
    match s {
        Stationary::Ws => 0,
        Stationary::Os => 1,
        Stationary::Is => 2,
    }
}

fn decode_stationary(v: u64) -> Option<Stationary> {
    match v {
        0 => Some(Stationary::Ws),
        1 => Some(Stationary::Os),
        2 => Some(Stationary::Is),
        _ => None,
    }
}

fn encode_platform(p: Platform) -> u64 {
    match p {
        Platform::Tpuv4i => 0,
        Platform::Gemmini => 1,
        Platform::Planaria => 2,
        Platform::UnfCu => 3,
        Platform::FuseCu => 4,
    }
}

fn decode_platform(v: u64) -> Option<Platform> {
    match v {
        0 => Some(Platform::Tpuv4i),
        1 => Some(Platform::Gemmini),
        2 => Some(Platform::Planaria),
        3 => Some(Platform::UnfCu),
        4 => Some(Platform::FuseCu),
        _ => None,
    }
}

/// A fused pair is four dimensions: `M, K, L, N` (the producer is
/// `M×K×L`, the consumer `M×L×N`; `try_new` re-checks the shared edge).
fn encode_pair(pair: FusedPair, out: &mut Vec<u64>) {
    let (p, c) = (pair.producer(), pair.consumer());
    out.extend([p.m(), p.k(), p.l(), c.l()]);
}

fn decode_pair(r: &mut RecordReader<'_>) -> Option<FusedPair> {
    let (m, k, l, n) = (r.u64()?, r.u64()?, r.u64()?, r.u64()?);
    let producer = MatMul::try_new(m, k, l).ok()?;
    let consumer = MatMul::try_new(m, l, n).ok()?;
    FusedPair::try_new(producer, consumer).ok()
}

/// A fused nest is `outer_is_m` plus four tile sizes (5 tokens); the
/// dataflow is re-scored through the model on decode.
fn encode_fused_nest(nest: &FusedNest, out: &mut Vec<u64>) {
    out.push(u64::from(nest.outer_is_m));
    for d in [FusedDim::M, FusedDim::K, FusedDim::L, FusedDim::N] {
        out.push(nest.tiling.tile(d));
    }
}

fn decode_fused(
    model: &CostModel,
    pair: FusedPair,
    bs: u64,
    r: &mut RecordReader<'_>,
) -> Option<FusedDataflow> {
    let outer_is_m = r.bool()?;
    let (t_m, t_k, t_l, t_n) = (r.u64()?, r.u64()?, r.u64()?, r.u64()?);
    if t_m == 0 || t_k == 0 || t_l == 0 || t_n == 0 {
        return None; // FusedTiling::new panics on zero tiles
    }
    let nest = FusedNest::new(outer_is_m, FusedTiling::new(t_m, t_k, t_l, t_n));
    let fused = FusedDataflow::score(model, pair, nest);
    (fused.footprint() <= bs).then_some(fused)
}

// --- operator cache ------------------------------------------------------

fn encode_op_entry(key: &TileKey, candidates: &[OpCandidate]) -> Vec<u64> {
    let (mm, platform, pe_dim, buffer_elems, model) = key;
    let mut out = Vec::with_capacity(8 + 13 * candidates.len());
    encode_mm(*mm, &mut out);
    out.push(encode_platform(*platform));
    out.extend([*pe_dim, *buffer_elems]);
    encode_model(model, &mut out);
    out.push(candidates.len() as u64);
    for c in candidates {
        out.push(encode_stationary(c.stationary()));
        out.extend([c.shape().0, c.shape().1]);
        encode_dataflow(c.dataflow(), &mut out);
        out.push(c.unit_compute_cycles());
    }
    out
}

fn decode_op_entry(record: &[u64]) -> Option<(TileKey, Vec<OpCandidate>)> {
    let mut r = RecordReader::new(record);
    let mm = decode_mm(&mut r)?;
    let platform = decode_platform(r.u64()?)?;
    let (pe_dim, buffer_elems) = (r.u64()?, r.u64()?);
    let model = decode_model(&mut r)?;
    let count = r.u64()?;
    let mut candidates = Vec::with_capacity(count.min(16) as usize);
    for _ in 0..count {
        let stationary = decode_stationary(r.u64()?)?;
        let shape = (r.u64()?, r.u64()?);
        if shape.0 == 0 || shape.1 == 0 {
            return None;
        }
        let dataflow = decode_dataflow(&model, &mut r)?;
        if dataflow.mm() != mm || dataflow.buffer_elems() > buffer_elems {
            return None;
        }
        candidates.push(OpCandidate::new(stationary, shape, dataflow, r.u64()?));
    }
    r.finish()?;
    Some(((mm, platform, pe_dim, buffer_elems, model), candidates))
}

/// Serializes the process-wide operator cache to `path`; returns the
/// number of entries written.
pub fn save_op_cache(path: &Path) -> io::Result<usize> {
    let mut file = CacheFile::new();
    file.push_section(
        SECTION_OPERATORS,
        op_cache_snapshot()
            .iter()
            .map(|(k, v)| encode_op_entry(k, v))
            .collect(),
    );
    let n = file.records();
    file.save_with(path, &arch_fingerprint())?;
    Ok(n)
}

/// Preloads the operator cache from `path`; all-or-nothing, 0 on any
/// anomaly (including a stale mapping-model digest in the fingerprint).
pub fn load_op_cache(path: &Path) -> usize {
    let Some(file) = CacheFile::load_with(path, &arch_fingerprint()) else {
        return 0;
    };
    let entries: Option<Vec<_>> = file
        .section(SECTION_OPERATORS)
        .iter()
        .map(|rec| decode_op_entry(rec))
        .collect();
    entries.map_or(0, op_cache_preload)
}

// --- fusion caches -------------------------------------------------------

fn encode_pair_entry(key: &PairKey, value: &Option<FusedDataflow>) -> Vec<u64> {
    let (pair, bs, model) = key;
    let mut out = Vec::with_capacity(12);
    encode_pair(*pair, &mut out);
    out.push(*bs);
    encode_model(model, &mut out);
    match value {
        None => out.push(0),
        Some(fused) => {
            out.push(1);
            encode_fused_nest(fused.nest(), &mut out);
        }
    }
    out
}

fn decode_pair_entry(record: &[u64]) -> Option<(PairKey, Option<FusedDataflow>)> {
    let mut r = RecordReader::new(record);
    let pair = decode_pair(&mut r)?;
    let bs = r.u64()?;
    let model = decode_model(&mut r)?;
    let value = if r.bool()? {
        Some(decode_fused(&model, pair, bs, &mut r)?)
    } else {
        None
    };
    r.finish()?;
    Some(((pair, bs, model), value))
}

fn encode_plan_entry(key: &PlanKey, value: &Option<ChainPlan>) -> Vec<u64> {
    let (chain, bs, model) = key;
    let mut out = Vec::new();
    out.push(chain.mms().len() as u64);
    for &mm in chain.mms() {
        encode_mm(mm, &mut out);
    }
    out.push(*bs);
    encode_model(model, &mut out);
    match value {
        None => out.push(0),
        Some(plan) => {
            out.push(1);
            out.push(plan.steps().len() as u64);
            for step in plan.steps() {
                match step {
                    ChainStep::Solo { dataflow, .. } => {
                        out.push(0);
                        encode_dataflow(dataflow, &mut out);
                    }
                    ChainStep::Pair { fused, .. } => {
                        out.push(1);
                        encode_fused_nest(fused.nest(), &mut out);
                    }
                }
            }
        }
    }
    out
}

fn decode_plan_entry(record: &[u64]) -> Option<(PlanKey, Option<ChainPlan>)> {
    let mut r = RecordReader::new(record);
    let len = r.u64()?;
    if len == 0 {
        return None; // MmChain::try_new asserts non-empty
    }
    let mut mms = Vec::with_capacity(len.min(64) as usize);
    for _ in 0..len {
        mms.push(decode_mm(&mut r)?);
    }
    let chain = MmChain::try_new(mms).ok()?;
    let bs = r.u64()?;
    let model = decode_model(&mut r)?;
    let value = if r.bool()? {
        let step_count = r.u64()?;
        let mut steps = Vec::with_capacity(step_count.min(64) as usize);
        let mut cursor = 0usize;
        for _ in 0..step_count {
            let step = match r.u64()? {
                0 => {
                    let dataflow = decode_dataflow(&model, &mut r)?;
                    if dataflow.mm() != chain.mm(cursor) || dataflow.buffer_elems() > bs {
                        return None;
                    }
                    ChainStep::Solo {
                        index: cursor,
                        dataflow,
                    }
                }
                1 => {
                    if cursor + 1 >= chain.mms().len() {
                        return None;
                    }
                    let pair =
                        FusedPair::try_new(chain.mm(cursor), chain.mm(cursor + 1)).ok()?;
                    ChainStep::Pair {
                        index: cursor,
                        fused: decode_fused(&model, pair, bs, &mut r)?,
                    }
                }
                _ => return None,
            };
            cursor += step.width();
            if cursor > chain.mms().len() {
                return None;
            }
            steps.push(step);
        }
        if cursor != chain.mms().len() {
            return None; // plan must cover the chain exactly
        }
        Some(ChainPlan::from_steps(steps, bs))
    } else {
        None
    };
    r.finish()?;
    Some(((chain, bs, model), value))
}

/// Serializes the process-wide fused-pair and chain-plan caches to one
/// file at `path`; returns the number of entries written.
pub fn save_fusion_caches(path: &Path) -> io::Result<usize> {
    let mut file = CacheFile::new();
    file.push_section(
        SECTION_PAIRS,
        pair_cache_snapshot()
            .iter()
            .map(|(k, v)| encode_pair_entry(k, v))
            .collect(),
    );
    file.push_section(
        SECTION_PLANS,
        plan_cache_snapshot()
            .iter()
            .map(|(k, v)| encode_plan_entry(k, v))
            .collect(),
    );
    let n = file.records();
    file.save_with(path, &arch_fingerprint())?;
    Ok(n)
}

/// Preloads the fused-pair and chain-plan caches from `path`;
/// all-or-nothing, 0 on any anomaly (including a stale mapping-model
/// digest in the fingerprint).
pub fn load_fusion_caches(path: &Path) -> usize {
    let Some(file) = CacheFile::load_with(path, &arch_fingerprint()) else {
        return 0;
    };
    let pairs: Option<Vec<_>> = file
        .section(SECTION_PAIRS)
        .iter()
        .map(|rec| decode_pair_entry(rec))
        .collect();
    let plans: Option<Vec<_>> = file
        .section(SECTION_PLANS)
        .iter()
        .map(|rec| decode_plan_entry(rec))
        .collect();
    match (pairs, plans) {
        (Some(pairs), Some(plans)) => pair_cache_preload(pairs) + plan_cache_preload(plans),
        _ => 0,
    }
}

// --- whole-graph plan cache ----------------------------------------------

/// A behavioral digest of the whole-graph fusion planner: the full plan
/// structure (step kinds, endpoints, per-step traffic) [`try_plan_dag`]
/// chooses on a fixed probe set — a linear attention chain, a fan-in DAG
/// with competing producers, and a four-matmul chain deep enough to admit
/// k-ary fusion — across both cost models and a buffer sweep spanning
/// infeasible, tight, and ample. Any change to path enumeration, candidate
/// weighting, or the cover search changes this value. (The deep-chain
/// probe arrived with the k-ary planner, so pre-k-ary graph cache files
/// cold-start exactly once.)
pub fn graph_planner_digest() -> String {
    static DIGEST: OnceLock<String> = OnceLock::new();
    DIGEST
        .get_or_init(|| {
            let probes = [
                probe_chain_graph(),
                probe_fan_in_graph(),
                probe_deep_chain_graph(),
            ];
            let mut h = DefaultHasher::new();
            for model in [CostModel::paper(), CostModel::read_write()] {
                for graph in &probes {
                    let dag = graph.mm_dag();
                    for bs in [2u64, 4 * 1024, 64 * 1024] {
                        match try_plan_dag(&model, &dag, bs) {
                            None => 0u64.hash(&mut h),
                            Some(plan) => {
                                1u64.hash(&mut h);
                                plan.total_ma().hash(&mut h);
                                for step in plan.steps() {
                                    match step {
                                        GraphStep::Solo {
                                            node,
                                            count,
                                            dataflow,
                                        } => (0u64, node.0, *count, dataflow.total_ma())
                                            .hash(&mut h),
                                        GraphStep::Fused {
                                            producer,
                                            consumer,
                                            count,
                                            fused,
                                        } => (1u64, producer.0, consumer.0, *count, fused.total_ma())
                                            .hash(&mut h),
                                        GraphStep::FusedChain {
                                            nodes,
                                            count,
                                            chain,
                                        } => {
                                            2u64.hash(&mut h);
                                            for n in nodes {
                                                n.0.hash(&mut h);
                                            }
                                            (*count, chain.total_ma()).hash(&mut h);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            format!("graph-planner-{:016x}", h.finish())
        })
        .clone()
}

/// One attention head chain: the canonical profitable fusion.
fn probe_chain_graph() -> OpGraph {
    let mut g = OpGraph::new();
    let a = g.add_matmul("qk", MatMul::new(256, 32, 256), 4);
    let s = g.add_softmax("sm", 256, 256, 4);
    let b = g.add_matmul("pv", MatMul::new(256, 256, 32), 4);
    g.connect(a, s);
    g.connect(s, b);
    g
}

/// A four-matmul attention-style chain whose depth-3+ fusion is
/// profitable at the ample probe buffer: the probe pinning the
/// depth-weighted path cover.
fn probe_deep_chain_graph() -> OpGraph {
    let mut g = OpGraph::new();
    let a = g.add_matmul("q_proj", MatMul::new(256, 64, 32), 2);
    let b = g.add_matmul("qk", MatMul::new(256, 32, 256), 2);
    let c = g.add_matmul("pv", MatMul::new(256, 256, 32), 2);
    let d = g.add_matmul("out_proj", MatMul::new(256, 32, 64), 2);
    g.connect(a, b);
    g.connect(b, c);
    g.connect(c, d);
    g
}

/// Two shape-compatible producers of one consumer: the fan-in site whose
/// claim the planner must decide by saved traffic, not insertion order.
fn probe_fan_in_graph() -> OpGraph {
    let mut g = OpGraph::new();
    let fat = g.add_matmul("fat", MatMul::new(256, 1024, 256), 1);
    let slim = g.add_matmul("slim", MatMul::new(256, 32, 256), 1);
    let add = g.add_elementwise("residual", 256 * 256, 1);
    let q = g.add_matmul("consumer", MatMul::new(256, 256, 32), 1);
    g.connect(fat, add);
    g.connect(slim, add);
    g.connect(add, q);
    g
}

/// The fingerprint stamped on whole-graph plan cache files: the base
/// format fingerprint extended with [`graph_planner_digest`]. Distinct
/// from [`arch_fingerprint`] because graph plans depend on the planner,
/// not the mapping/cycle model: a mapping change keeps graph plans warm,
/// a planner change cold-starts exactly this file.
pub fn graph_fingerprint() -> String {
    fingerprint_with(&graph_planner_digest())
}

fn encode_graph_entry(key: &GraphKey, value: &Option<GraphPlan>) -> Vec<u64> {
    let (dag, bs, model) = key;
    let mut out = Vec::new();
    out.push(dag.mms().len() as u64);
    for (id, mm, count) in dag.mms() {
        out.push(id.0 as u64);
        encode_mm(*mm, &mut out);
        out.push(*count);
    }
    out.push(dag.links().len() as u64);
    for l in dag.links() {
        out.extend([l.producer as u64, l.consumer as u64]);
    }
    out.push(*bs);
    encode_model(model, &mut out);
    match value {
        None => out.push(0),
        Some(plan) => {
            out.push(1);
            out.push(plan.steps().len() as u64);
            for step in plan.steps() {
                match step {
                    GraphStep::Solo {
                        node,
                        count,
                        dataflow,
                    } => {
                        out.extend([0, node.0 as u64, *count]);
                        encode_dataflow(dataflow, &mut out);
                    }
                    GraphStep::Fused {
                        producer,
                        consumer,
                        count,
                        fused,
                    } => {
                        out.extend([1, producer.0 as u64, consumer.0 as u64, *count]);
                        encode_fused_nest(fused.nest(), &mut out);
                    }
                    GraphStep::FusedChain {
                        nodes,
                        count,
                        chain,
                    } => {
                        out.extend([2, nodes.len() as u64]);
                        out.extend(nodes.iter().map(|n| n.0 as u64));
                        out.push(*count);
                        let nest = chain.nest();
                        out.push(nest.t_m);
                        out.extend(nest.phase_tiles.iter().copied());
                    }
                }
            }
        }
    }
    out
}

fn decode_graph_entry(record: &[u64]) -> Option<(GraphKey, Option<GraphPlan>)> {
    let mut r = RecordReader::new(record);
    let mm_count = r.u64()?;
    let mut mms = Vec::with_capacity(mm_count.min(64) as usize);
    for _ in 0..mm_count {
        let id = NodeId(usize::try_from(r.u64()?).ok()?);
        let mm = decode_mm(&mut r)?;
        mms.push((id, mm, r.u64()?));
    }
    let link_count = r.u64()?;
    let mut links = Vec::with_capacity(link_count.min(64) as usize);
    for _ in 0..link_count {
        links.push(FuseLink {
            producer: usize::try_from(r.u64()?).ok()?,
            consumer: usize::try_from(r.u64()?).ok()?,
        });
    }
    // `from_parts` re-checks every link invariant a hostile record could
    // violate (bad indices, shape or count mismatches, duplicate ids).
    let dag = MmDag::from_parts(mms, links)?;
    let bs = r.u64()?;
    let model = decode_model(&mut r)?;
    let lookup = |id: NodeId| dag.mms().iter().find(|(n, ..)| *n == id).copied();
    let value = if r.bool()? {
        let step_count = r.u64()?;
        let mut steps = Vec::with_capacity(step_count.min(64) as usize);
        let mut covered: Vec<NodeId> = Vec::new();
        for _ in 0..step_count {
            match r.u64()? {
                0 => {
                    let node = NodeId(usize::try_from(r.u64()?).ok()?);
                    let count = r.u64()?;
                    let (_, mm, node_count) = lookup(node)?;
                    let dataflow = decode_dataflow(&model, &mut r)?;
                    if count != node_count || dataflow.mm() != mm || dataflow.buffer_elems() > bs
                    {
                        return None;
                    }
                    covered.push(node);
                    steps.push(GraphStep::Solo {
                        node,
                        count,
                        dataflow,
                    });
                }
                1 => {
                    let producer = NodeId(usize::try_from(r.u64()?).ok()?);
                    let consumer = NodeId(usize::try_from(r.u64()?).ok()?);
                    let count = r.u64()?;
                    let (_, pmm, pcount) = lookup(producer)?;
                    let (_, cmm, _) = lookup(consumer)?;
                    if count != pcount {
                        return None;
                    }
                    let pair = FusedPair::try_new(pmm, cmm).ok()?;
                    let fused = decode_fused(&model, pair, bs, &mut r)?;
                    covered.extend([producer, consumer]);
                    steps.push(GraphStep::Fused {
                        producer,
                        consumer,
                        count,
                        fused,
                    });
                }
                2 => {
                    let n = usize::try_from(r.u64()?).ok()?;
                    if !(3..=64).contains(&n) {
                        return None;
                    }
                    let mut nodes = Vec::with_capacity(n);
                    for _ in 0..n {
                        nodes.push(NodeId(usize::try_from(r.u64()?).ok()?));
                    }
                    let count = r.u64()?;
                    let mut shapes = Vec::with_capacity(n);
                    for &id in &nodes {
                        let (_, mm, node_count) = lookup(id)?;
                        if node_count != count {
                            return None;
                        }
                        shapes.push(mm);
                    }
                    // `try_new` re-checks the shared M and chained edges.
                    let chain = FusedChain::try_new(&shapes).ok()?;
                    let t_m = r.u64()?;
                    let mut tiles = Vec::with_capacity(n);
                    for _ in 0..n {
                        tiles.push(r.u64()?);
                    }
                    if t_m == 0 || tiles.contains(&0) {
                        return None; // ChainNest::new panics on zero tiles
                    }
                    let fused =
                        FusedChainDataflow::score(&model, chain, ChainNest::new(t_m, tiles));
                    if fused.footprint() > bs {
                        return None;
                    }
                    covered.extend(nodes.iter().copied());
                    steps.push(GraphStep::FusedChain {
                        nodes,
                        count,
                        chain: fused,
                    });
                }
                _ => return None,
            }
        }
        // The plan must cover every matmul of the DAG exactly once.
        let mut expected: Vec<NodeId> = dag.mms().iter().map(|(n, ..)| *n).collect();
        expected.sort();
        covered.sort();
        if covered != expected {
            return None;
        }
        Some(GraphPlan::from_steps(steps, bs))
    } else {
        None
    };
    r.finish()?;
    Some(((dag, bs, model), value))
}

/// Serializes the process-wide whole-graph plan cache to `path`; returns
/// the number of entries written. Stamped with [`graph_fingerprint`], so
/// a planner change invalidates the file.
pub fn save_graph_plan_cache(path: &Path) -> io::Result<usize> {
    let mut file = CacheFile::new();
    file.push_section(
        SECTION_GRAPHS,
        graph_cache_snapshot()
            .iter()
            .map(|(k, v)| encode_graph_entry(k, v))
            .collect(),
    );
    let n = file.records();
    file.save_with(path, &graph_fingerprint())?;
    Ok(n)
}

/// Preloads the whole-graph plan cache from `path`; all-or-nothing, 0 on
/// any anomaly (including a stale planner digest in the fingerprint).
pub fn load_graph_plan_cache(path: &Path) -> usize {
    let Some(file) = CacheFile::load_with(path, &graph_fingerprint()) else {
        return 0;
    };
    let entries: Option<Vec<_>> = file
        .section(SECTION_GRAPHS)
        .iter()
        .map(|rec| decode_graph_entry(rec))
        .collect();
    entries.map_or(0, graph_cache_preload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_fusion::{optimize_pair, try_plan_chain};

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    #[test]
    fn pair_entry_round_trips() {
        let pair = FusedPair::try_new(MatMul::new(256, 64, 256), MatMul::new(256, 256, 64))
            .unwrap();
        for bs in [2, 40_000] {
            let value = optimize_pair(&MODEL, pair, bs);
            let rec = encode_pair_entry(&(pair, bs, MODEL), &value);
            let (key, back) = decode_pair_entry(&rec).unwrap();
            assert_eq!(key, (pair, bs, MODEL));
            assert_eq!(back, value);
        }
    }

    #[test]
    fn plan_entry_round_trips() {
        let chain = MmChain::try_new(vec![
            MatMul::new(1024, 64, 1024),
            MatMul::new(1024, 1024, 64),
            MatMul::new(1024, 64, 256),
        ])
        .unwrap();
        for bs in [2, 64 * 1024] {
            let value = try_plan_chain(&MODEL, &chain, bs);
            let rec = encode_plan_entry(&(chain.clone(), bs, MODEL), &value);
            let (key, back) = decode_plan_entry(&rec).unwrap();
            assert_eq!(key.0, chain);
            assert_eq!(back, value);
        }
    }

    #[test]
    fn op_entry_round_trips() {
        use crate::intra::op_candidates;
        use crate::spec::ArraySpec;
        let spec = ArraySpec::paper_default();
        let mm = MatMul::new(512, 384, 640);
        for platform in [Platform::Tpuv4i, Platform::FuseCu] {
            let key = (mm, platform, spec.pe_dim, spec.buffer_elems, MODEL);
            let candidates = op_candidates(&spec, platform, &MODEL, mm);
            let rec = encode_op_entry(&key, &candidates);
            let (back_key, back) = decode_op_entry(&rec).unwrap();
            assert_eq!(back_key, key);
            assert_eq!(back, candidates);
        }
    }

    #[test]
    fn tampered_entries_are_rejected() {
        let pair = FusedPair::try_new(MatMul::new(128, 64, 128), MatMul::new(128, 128, 64))
            .unwrap();
        let value = optimize_pair(&MODEL, pair, 40_000);
        let rec = encode_pair_entry(&(pair, 40_000, MODEL), &value);
        // Layout: [m, k, l, n, bs, model, tag, outer_is_m, t_m, t_k, t_l, t_n]
        // Zero tile (FusedTiling::new would panic; decoder must reject).
        let mut bad = rec.clone();
        *bad.last_mut().unwrap() = 0;
        assert!(decode_pair_entry(&bad).is_none());
        // Claimed footprint no longer fits the key's buffer.
        let mut bad = rec.clone();
        bad[4] = 3; // shrink bs below any fused footprint for this pair
        assert!(decode_pair_entry(&bad).is_none());
        // Out-of-range model and tag discriminants.
        let mut bad = rec.clone();
        bad[5] = 7;
        assert!(decode_pair_entry(&bad).is_none());
        let mut bad = rec.clone();
        bad[6] = 2;
        assert!(decode_pair_entry(&bad).is_none());
        // A truncated record underruns the reader.
        assert!(decode_pair_entry(&rec[..rec.len() - 1]).is_none());
    }

    #[test]
    fn graph_entry_round_trips() {
        let dag = probe_fan_in_graph().mm_dag();
        for bs in [2u64, 64 * 1024] {
            let value = try_plan_dag(&MODEL, &dag, bs);
            let rec = encode_graph_entry(&(dag.clone(), bs, MODEL), &value);
            let (key, back) = decode_graph_entry(&rec).unwrap();
            assert_eq!(key, (dag.clone(), bs, MODEL));
            assert_eq!(back, value);
        }
    }

    #[test]
    fn graph_entry_with_chain_step_round_trips() {
        use fusecu_fusion::graph_planner::GraphStep;
        let dag = probe_deep_chain_graph().mm_dag();
        for bs in [2u64, 64 * 1024] {
            let value = try_plan_dag(&MODEL, &dag, bs);
            if bs > 2 {
                let plan = value.as_ref().expect("ample buffer must plan");
                assert!(
                    plan.steps()
                        .iter()
                        .any(|s| matches!(s, GraphStep::FusedChain { .. })),
                    "the deep-chain probe must exercise the k-ary encode path"
                );
            }
            let rec = encode_graph_entry(&(dag.clone(), bs, MODEL), &value);
            let (key, back) = decode_graph_entry(&rec).unwrap();
            assert_eq!(key, (dag.clone(), bs, MODEL));
            assert_eq!(back, value);
        }
        // A zero phase tile inside the chain payload must be rejected.
        let value = try_plan_dag(&MODEL, &dag, 64 * 1024);
        let rec = encode_graph_entry(&(dag.clone(), 64 * 1024, MODEL), &value);
        let mut bad = rec.clone();
        *bad.last_mut().unwrap() = 0;
        assert!(decode_graph_entry(&bad).is_none());
        // A truncated chain record underruns the reader.
        assert!(decode_graph_entry(&rec[..rec.len() - 1]).is_none());
    }

    #[test]
    fn tampered_graph_entries_are_rejected() {
        let dag = probe_fan_in_graph().mm_dag();
        let value = try_plan_dag(&MODEL, &dag, 64 * 1024);
        assert!(value.is_some(), "probe must plan at an ample buffer");
        let rec = encode_graph_entry(&(dag.clone(), 64 * 1024, MODEL), &value);
        // A link pointing past the matmul list.
        let mut bad = rec.clone();
        let link_base = 1 + dag.mms().len() * 5 + 1;
        bad[link_base] = 99;
        assert!(decode_graph_entry(&bad).is_none());
        // A truncated record underruns the reader.
        assert!(decode_graph_entry(&rec[..rec.len() - 1]).is_none());
        // A zero tile inside the fused step payload.
        let mut bad = rec.clone();
        *bad.last_mut().unwrap() = 0;
        assert!(decode_graph_entry(&bad).is_none());
    }

    #[test]
    fn graph_planner_digest_change_forces_a_cold_start() {
        let dir =
            std::env::temp_dir().join(format!("fusecu-graph-digest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graphs.cache");

        // Warm the graph-plan cache with one real entry and persist it.
        let dag = probe_chain_graph().mm_dag();
        let plan = try_plan_dag(&MODEL, &dag, 64 * 1024);
        graph_cache_preload(vec![((dag, 64 * 1024, MODEL), plan)]);
        assert!(save_graph_plan_cache(&path).unwrap() >= 1);

        // Same digest: the file is readable and carries the entry.
        let file = CacheFile::load_with(&path, &graph_fingerprint()).unwrap();
        assert!(file.records() >= 1);

        // Re-stamp the same body under a *different* planner digest, as a
        // changed link enumeration or matching search would have: the load
        // must cold-start rather than serve stale fusion structure.
        file.save_with(&path, &fingerprint_with("graph-planner-changed"))
            .unwrap();
        assert!(CacheFile::load_with(&path, &graph_fingerprint()).is_none());
        assert_eq!(load_graph_plan_cache(&path), 0);
        // The stale file is also invisible to the other loaders.
        assert!(CacheFile::load(&path).is_none());
        assert_eq!(load_fusion_caches(&path), 0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graph_fingerprint_is_distinct_from_arch_and_base() {
        assert_eq!(graph_planner_digest(), graph_planner_digest());
        let fp = graph_fingerprint();
        assert_ne!(fp, arch_fingerprint());
        assert_ne!(fp, fusecu_dataflow::persist::fingerprint());
        assert!(fp.starts_with(&fusecu_dataflow::persist::fingerprint()));
    }

    #[test]
    fn mapping_digest_is_stable_and_extends_the_fingerprint() {
        // Deterministic within a process (OnceLock) and distinct from the
        // base fingerprint: arch files must not be readable as sweep files.
        assert_eq!(mapping_model_digest(), mapping_model_digest());
        let fp = arch_fingerprint();
        assert_ne!(fp, fusecu_dataflow::persist::fingerprint());
        assert!(fp.starts_with(&fusecu_dataflow::persist::fingerprint()));
    }

    #[test]
    fn mapping_digest_change_forces_a_cold_start() {
        let dir = std::env::temp_dir().join(format!("fusecu-arch-digest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ops.cache");

        // Warm the operator cache with one real entry and persist it.
        use crate::intra::{op_candidates, op_cache_preload};
        let spec = ArraySpec::paper_default();
        let mm = MatMul::new(320, 96, 448);
        let key = (mm, Platform::Tpuv4i, spec.pe_dim, spec.buffer_elems, MODEL);
        let candidates = op_candidates(&spec, Platform::Tpuv4i, &MODEL, mm);
        op_cache_preload(vec![(key, candidates)]);
        assert!(save_op_cache(&path).unwrap() >= 1);

        // Same digest: the file is readable and carries the entry. (The
        // preload count is 0 here only because the process-wide cache
        // already holds the key we just warmed it with.)
        let file = CacheFile::load_with(&path, &arch_fingerprint()).unwrap();
        assert!(file.records() >= 1);

        // Re-stamp the same body under a *different* mapping digest, as a
        // changed mapping/cycle model would have: the load must cold-start.
        file.save_with(&path, &fingerprint_with("mapping-models-changed"))
            .unwrap();
        assert!(CacheFile::load_with(&path, &arch_fingerprint()).is_none());
        assert_eq!(load_op_cache(&path), 0);
        // And the stale file is also invisible to the base-fingerprint loader.
        assert!(CacheFile::load(&path).is_none());

        std::fs::remove_dir_all(&dir).ok();
    }
}
