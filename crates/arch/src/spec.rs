//! Spatial-architecture parameters (Fig 8 / §V-A).

use std::fmt;

/// Physical parameters shared by all evaluated platforms.
///
/// The paper's compute configuration is TPUv4i's: `128 × 128 × 4` PEs and
/// 1 TB/s of on-chip bandwidth. Elements are one byte (INT8), so buffer
/// sizes in bytes equal element counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArraySpec {
    /// PE array edge per compute unit (`N`; 128 for TPUv4i).
    pub pe_dim: u64,
    /// Number of compute units (4 for TPUv4i).
    pub num_cus: u64,
    /// Effective memory bandwidth in elements per cycle. The paper's port
    /// is 1 TB/s (≈ 952 B/cycle at TPUv4i's 1.05 GHz); the default applies
    /// a 45% achieved-vs-peak derating, the well-documented HBM efficiency
    /// for strided tensor traffic, giving 448 elements/cycle.
    pub bw_elems_per_cycle: u64,
    /// Shared on-chip buffer in elements.
    pub buffer_elems: u64,
}

impl ArraySpec {
    /// The paper's TPUv4i-derived configuration with a given buffer size.
    pub fn tpuv4i_with_buffer(buffer_elems: u64) -> ArraySpec {
        ArraySpec {
            pe_dim: 128,
            num_cus: 4,
            bw_elems_per_cycle: 448,
            buffer_elems,
        }
    }

    /// The default evaluation point used for Fig 10/11 runs: the TPUv4i
    /// compute configuration with a 512 KiB buffer — the §III-A worked
    /// example's size, inside the 32 KiB–32 MiB range the paper sweeps, and
    /// small relative to the layer tensors so the intra/inter-operator
    /// dataflow choice matters (at tens of MiB every platform trivially
    /// reaches the Three-NRA floor and the comparison degenerates).
    pub fn paper_default() -> ArraySpec {
        ArraySpec::tpuv4i_with_buffer(512 * 1024)
    }

    /// Total PEs across all compute units.
    pub fn total_pes(&self) -> u64 {
        self.pe_dim * self.pe_dim * self.num_cus
    }

    /// Peak MACs per cycle (one MAC per PE per cycle).
    pub fn peak_macs_per_cycle(&self) -> u64 {
        self.total_pes()
    }

    /// A copy with a different buffer size (the Fig 9 sweep).
    #[must_use]
    pub fn with_buffer(&self, buffer_elems: u64) -> ArraySpec {
        ArraySpec {
            buffer_elems,
            ..*self
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero parameter or a PE dimension that cannot be halved
    /// (the narrow/wide reshapes need `pe_dim % 2 == 0`).
    pub fn validate(&self) {
        assert!(self.pe_dim > 0 && self.num_cus > 0, "degenerate fabric");
        assert!(self.bw_elems_per_cycle > 0, "zero bandwidth");
        assert!(self.buffer_elems >= 3, "buffer below the minimum tile set");
        assert!(self.pe_dim.is_multiple_of(2), "reshapes require an even PE dimension");
    }
}

impl fmt::Display for ArraySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{n}x{n}x{c} PEs, {bw} elem/cy, buffer {buf} KiB",
            n = self.pe_dim,
            c = self.num_cus,
            bw = self.bw_elems_per_cycle,
            buf = self.buffer_elems / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpuv4i_configuration() {
        let s = ArraySpec::paper_default();
        s.validate();
        assert_eq!(s.pe_dim, 128);
        assert_eq!(s.num_cus, 4);
        assert_eq!(s.total_pes(), 128 * 128 * 4);
        assert_eq!(s.peak_macs_per_cycle(), 65_536);
    }

    #[test]
    fn buffer_sweep_changes_only_the_buffer() {
        let a = ArraySpec::paper_default();
        let b = a.with_buffer(32 * 1024);
        assert_eq!(b.buffer_elems, 32 * 1024);
        assert_eq!(b.pe_dim, a.pe_dim);
    }

    #[test]
    #[should_panic(expected = "even PE dimension")]
    fn odd_pe_dim_rejected() {
        ArraySpec {
            pe_dim: 127,
            num_cus: 4,
            bw_elems_per_cycle: 1024,
            buffer_elems: 1024,
        }
        .validate();
    }

    #[test]
    fn display_mentions_buffer() {
        let s = ArraySpec::tpuv4i_with_buffer(512 * 1024);
        assert!(s.to_string().contains("512 KiB"));
    }
}
