//! Per-operator optimization within one platform's dataflow space.
//!
//! Following the paper's §II-A split, the buffer↔memory level (tiling +
//! scheduling) and the PE↔buffer level (mapping) are optimized separately:
//!
//! * the buffer-level loop nest comes from the principle optimizer,
//!   restricted to the platform's supported stationaries and — for rigid
//!   systolic designs — to array-aligned stationary tiles;
//! * the spatial mapping picks the best array shape from the platform's
//!   flexibility menu ([`crate::flex`]).
//!
//! The two couple through the final cycle count `max(compute, DRAM)`; the
//! chosen configuration minimizes `(memory access, cycles)` — communication
//! first, matching the paper's lower-bound objective. Memory access is the
//! primary metric throughout the paper (and the only one its principles
//! bound); cycles only break ties between stationaries with equal traffic.
//! Putting cycles first would let a larger buffer or a faster DRAM link
//! *raise* traffic by trading MA for compute overlap, breaking the
//! monotonicity the lower-bound analysis guarantees.

use std::sync::OnceLock;

use fusecu_dataflow::principles::stationary_sweep;
use fusecu_dataflow::{CostModel, Dataflow, LoopNest, Tiling};
use fusecu_ir::{MatMul, Operand};
use fusecu_dataflow::memo::{CacheStats, MemoCache, SectionCounters};

use crate::flex::best_mapping;
use crate::platform::Platform;
use crate::spec::ArraySpec;
use crate::stationary::Stationary;

/// Buffer-level dataflow of a rigid systolic design ("low tiling
/// flexibility"): the stationary tensor is staged in exactly one `N × N`
/// array panel at a time (clamped to the dimension sizes), so the two
/// stationary dimensions' tiles are pinned to the panel edge and only the
/// streamed dimension tiles freely (its tile does not change memory access;
/// the minimum footprint of 1 is used). This is how TPU-class pipelines
/// stage weights, and it is the restriction that costs TPUv4i/Gemmini their
/// memory traffic in Fig 10: every panel switch re-streams the non-resident
/// operands.
///
/// The staging pipeline can, however, chain consecutive panels along *one*
/// stationary dimension (the weight-FIFO effect: panels prefetch back to
/// back along the contraction or output-column axis), so one stationary
/// tile may grow in panel multiples while the other stays pinned at `N`.
/// Both aggregation axes are tried and the better one kept.
///
/// When even a single panel does not fit the buffer, the panel shrinks to
/// the largest feasible edge — rigid hardware with a tiny scratchpad still
/// runs, just with a smaller logical panel.
fn panel_dataflow(
    model: &CostModel,
    mm: MatMul,
    bs: u64,
    stationary: Operand,
    n: u64,
) -> Option<Dataflow> {
    let [da, db] = stationary.dims();
    let dc = stationary.missing_dim();
    let mut best: Option<Dataflow> = None;
    for (agg, pin) in [(da, db), (db, da)] {
        let mut edge = n;
        while edge > 0 {
            let t_pin = edge.min(mm.dim(pin));
            let base = Tiling::new(1, 1, 1).with(pin, t_pin).with(dc, 1);
            if !base.with(agg, edge.min(mm.dim(agg))).fits(mm, bs) {
                edge /= 2;
                continue;
            }
            // Largest panel multiple (or the full dimension) that fits.
            let mut t_agg = edge.min(mm.dim(agg));
            loop {
                let next = if t_agg + edge >= mm.dim(agg) {
                    mm.dim(agg)
                } else {
                    t_agg + edge
                };
                if next == t_agg || !base.with(agg, next).fits(mm, bs) {
                    break;
                }
                t_agg = next;
            }
            let nest = LoopNest::new([da, db, dc], base.with(agg, t_agg));
            let df = model.dataflow(mm, nest);
            if best.is_none_or(|b| df.total_ma() < b.total_ma()) {
                best = Some(df);
            }
            break;
        }
    }
    best
}

/// The selected execution of one matmul on one platform.
#[derive(Debug, Clone, Copy)]
pub struct OpPerf {
    mm: MatMul,
    count: u64,
    stationary: Stationary,
    shape: (u64, u64),
    dataflow: Dataflow,
    compute_cycles: u64,
    dram_cycles: u64,
}

impl OpPerf {
    /// The matmul.
    pub fn mm(&self) -> MatMul {
        self.mm
    }

    /// Instance count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The chosen PE-level stationary.
    pub fn stationary(&self) -> Stationary {
        self.stationary
    }

    /// The chosen logical array shape per CU.
    pub fn shape(&self) -> (u64, u64) {
        self.shape
    }

    /// The chosen buffer-level dataflow.
    pub fn dataflow(&self) -> &Dataflow {
        &self.dataflow
    }

    /// Total memory access over all instances, in elements.
    pub fn total_ma(&self) -> u64 {
        self.dataflow.total_ma() * self.count
    }

    /// Wall-clock compute cycles over all instances (CU parallelism
    /// applied).
    pub fn compute_cycles(&self) -> u64 {
        self.compute_cycles
    }

    /// DRAM transfer cycles over all instances.
    pub fn dram_cycles(&self) -> u64 {
        self.dram_cycles
    }

    /// Execution cycles with compute/DRAM overlap (double buffering).
    pub fn cycles(&self) -> u64 {
        self.compute_cycles.max(self.dram_cycles)
    }

    /// Total MACs over all instances.
    pub fn macs(&self) -> u64 {
        self.mm.macs() * self.count
    }
}

/// One per-stationary candidate execution: the expensive,
/// bandwidth-invariant half of [`optimize_op`].
///
/// The buffer-level dataflow and the array mapping depend only on the
/// shape, the platform, the buffer budget, and the array edge — never on
/// DRAM bandwidth, CU count, or instance count, which enter only in the
/// final cycle division. Caching at this granularity lets a bandwidth
/// ablation or a CU-count sweep reuse every candidate list and re-run only
/// the arithmetic of [`select_op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCandidate {
    stationary: Stationary,
    shape: (u64, u64),
    dataflow: Dataflow,
    unit_compute_cycles: u64,
}

impl OpCandidate {
    /// Rebuilds a candidate from its parts — the reconstruction entry
    /// point for the disk persistence layer. Candidate generation always
    /// goes through [`op_candidates`].
    pub fn new(
        stationary: Stationary,
        shape: (u64, u64),
        dataflow: Dataflow,
        unit_compute_cycles: u64,
    ) -> OpCandidate {
        OpCandidate {
            stationary,
            shape,
            dataflow,
            unit_compute_cycles,
        }
    }

    /// The PE-level stationary this candidate keeps resident.
    pub fn stationary(&self) -> Stationary {
        self.stationary
    }

    /// The chosen logical array shape per CU.
    pub fn shape(&self) -> (u64, u64) {
        self.shape
    }

    /// The buffer-level dataflow.
    pub fn dataflow(&self) -> &Dataflow {
        &self.dataflow
    }

    /// Compute cycles of a single instance on a single CU.
    pub fn unit_compute_cycles(&self) -> u64 {
        self.unit_compute_cycles
    }
}

/// The per-stationary candidate executions of one matmul on one platform,
/// in the platform's stationary order. Empty when the buffer cannot hold
/// even a unit tiling.
pub fn op_candidates(
    spec: &ArraySpec,
    platform: Platform,
    model: &CostModel,
    mm: MatMul,
) -> Vec<OpCandidate> {
    let mut out = Vec::new();
    for &stationary in platform.stationaries() {
        let operand = stationary.operand();
        let dataflow = if platform.array_aligned_tiles() {
            panel_dataflow(model, mm, spec.buffer_elems, operand, spec.pe_dim)
        } else {
            stationary_sweep(model, mm, spec.buffer_elems, operand)
        };
        let Some(dataflow) = dataflow else { continue };
        let [d1, d2] = stationary.array_dims().map(|d| mm.dim(d));
        let d3 = mm.dim(stationary.moving_dim());
        let (unit_compute_cycles, shape) = best_mapping(platform.tiling_flex(), spec, d1, d2, d3);
        out.push(OpCandidate {
            stationary,
            shape,
            dataflow,
            unit_compute_cycles,
        });
    }
    out
}

/// The cheap, bandwidth-dependent half of [`optimize_op`]: applies the
/// instance count, CU parallelism, and DRAM bandwidth to each candidate
/// and keeps the lexicographic `(memory access, cycles)` minimum, in
/// candidate order. `None` when the candidate list is empty.
pub fn select_op(spec: &ArraySpec, count: u64, candidates: &[OpCandidate]) -> Option<OpPerf> {
    let mut best: Option<OpPerf> = None;
    for c in candidates {
        let compute_cycles = (c.unit_compute_cycles * count).div_ceil(spec.num_cus);
        let dram_cycles = (c.dataflow.total_ma() * count).div_ceil(spec.bw_elems_per_cycle);
        let cand = OpPerf {
            mm: c.dataflow.mm(),
            count,
            stationary: c.stationary,
            shape: c.shape,
            dataflow: c.dataflow,
            compute_cycles,
            dram_cycles,
        };
        let better = match &best {
            None => true,
            Some(b) => (cand.total_ma(), cand.cycles()) < (b.total_ma(), b.cycles()),
        };
        if better {
            best = Some(cand);
        }
    }
    best
}

/// Optimizes one matmul (with `count` identical instances) within a
/// platform's dataflow space.
///
/// Instances are data-parallel across the CUs; compute cycles are CU-cycles
/// divided by the CU count (ceiling).
///
/// # Panics
///
/// Panics when the buffer cannot hold even a unit tiling (`buffer < 3`).
pub fn optimize_op(
    spec: &ArraySpec,
    platform: Platform,
    model: &CostModel,
    mm: MatMul,
    count: u64,
) -> OpPerf {
    assert!(count > 0, "instance count must be non-zero");
    select_op(spec, count, &op_candidates(spec, platform, model, mm)).unwrap_or_else(|| {
        panic!(
            "buffer of {} elements cannot hold any tile of {mm}",
            spec.buffer_elems
        )
    })
}

/// Memoization key of one candidate-generation problem: every input
/// [`op_candidates`] depends on. Deliberately *narrower* than `ArraySpec`:
/// only the array edge and the buffer budget enter candidate generation,
/// so sweeping bandwidth or CU count reuses the cached list. (Keying on
/// the full spec was the PR 1 bug that made the ablation bandwidth sweep
/// miss on every point.)
pub type TileKey = (MatMul, Platform, u64, u64, CostModel);

fn tile_key(spec: &ArraySpec, platform: Platform, model: &CostModel, mm: MatMul) -> TileKey {
    (mm, platform, spec.pe_dim, spec.buffer_elems, *model)
}

fn op_cache() -> &'static MemoCache<TileKey, Vec<OpCandidate>> {
    static CACHE: OnceLock<MemoCache<TileKey, Vec<OpCandidate>>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// [`optimize_op`] through the process-wide operator cache.
///
/// Graph evaluation revisits the same operator many times — transformer
/// graphs repeat shapes across layers (already aggregated into `count`)
/// and, more importantly, the figure grids re-evaluate identical
/// `(shape, platform)` points across models, bandwidth sweeps, CU counts,
/// and sequence lengths. The expensive candidate generation is cached on
/// [`TileKey`]; the per-call [`select_op`] arithmetic applies the
/// remaining spec fields, so cached and uncached paths select identically.
///
/// # Panics
///
/// Panics when the buffer cannot hold even a unit tiling (`buffer < 3`).
pub fn optimize_op_cached(
    spec: &ArraySpec,
    platform: Platform,
    model: &CostModel,
    mm: MatMul,
    count: u64,
) -> OpPerf {
    try_optimize_op_cached(spec, platform, model, mm, count).unwrap_or_else(|| {
        panic!(
            "buffer of {} elements cannot hold any tile of {mm}",
            spec.buffer_elems
        )
    })
}

/// Fallible form of [`optimize_op_cached`]: `None` when the buffer cannot
/// hold even a unit tiling (`buffer < 3`), instead of panicking. The entry
/// point for callers probing sub-minimal buffers (ablation sweeps, the
/// graceful graph-evaluation path).
pub fn try_optimize_op_cached(
    spec: &ArraySpec,
    platform: Platform,
    model: &CostModel,
    mm: MatMul,
    count: u64,
) -> Option<OpPerf> {
    assert!(count > 0, "instance count must be non-zero");
    let candidates = op_cache().get_or_compute(tile_key(spec, platform, model, mm), || {
        op_candidates(spec, platform, model, mm)
    });
    select_op(spec, count, &candidates)
}

/// Hit/miss counters of the process-wide operator cache, for the figure
/// binaries' cache-effectiveness logging.
pub fn op_cache_stats() -> CacheStats {
    op_cache().stats()
}

/// Per-section counters of the process-wide operator cache, for
/// machine-readable stats (`--stats-json`, the serve daemon).
pub fn op_cache_counters() -> SectionCounters {
    op_cache().counters("operators")
}

/// Drops every operator-cache entry, keeping the hit/miss counters and
/// counting the drops as evictions (the serve daemon's memory cap).
/// Returns the number of entries evicted.
pub fn op_cache_evict_all() -> usize {
    op_cache().evict_all()
}

/// Drops all operator-cache entries and resets its counters — for tests
/// and the stress harness's cold-start-per-process baseline.
pub fn op_cache_clear() {
    op_cache().clear();
}

/// Completed operator-cache entries, for the disk persistence layer.
pub fn op_cache_snapshot() -> Vec<(TileKey, Vec<OpCandidate>)> {
    op_cache().snapshot()
}

/// Preloads operator-cache entries saved by an earlier process; returns
/// the number inserted. Counters are untouched.
pub fn op_cache_preload(
    entries: impl IntoIterator<Item = (TileKey, Vec<OpCandidate>)>,
) -> usize {
    op_cache().preload(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArraySpec {
        ArraySpec::paper_default()
    }

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    #[test]
    fn panel_dataflow_pins_one_dim_and_aggregates_the_other() {
        let mm = MatMul::new(4096, 768, 768);
        let df = panel_dataflow(&MODEL, mm, 512 * 1024, Operand::Rhs, 128).unwrap();
        let (tk, tl) = (
            df.tiling().tile(fusecu_ir::MmDim::K),
            df.tiling().tile(fusecu_ir::MmDim::L),
        );
        // One stationary dimension pinned to the 128-panel, the other
        // aggregated to the full dimension through the staging FIFO.
        assert!(
            (tk == 768 && tl == 128) || (tk == 128 && tl == 768),
            "got T_K={tk}, T_L={tl}"
        );
        assert_eq!(df.tiling().tile(fusecu_ir::MmDim::M), 1);
        // Clamped when a dimension is shorter than the panel.
        let small = MatMul::new(1024, 64, 1024);
        let df = panel_dataflow(&MODEL, small, 512 * 1024, Operand::Rhs, 128).unwrap();
        assert!(df.tiling().tile(fusecu_ir::MmDim::K) <= 64);
    }

    #[test]
    fn panel_shrinks_under_tiny_buffers() {
        let mm = MatMul::new(4096, 768, 768);
        let df = panel_dataflow(&MODEL, mm, 4 * 1024, Operand::Rhs, 128).unwrap();
        assert!(df.buffer_elems() <= 4 * 1024);
        assert!(panel_dataflow(&MODEL, mm, 2, Operand::Rhs, 128).is_none());
    }

    #[test]
    fn tpu_is_weight_stationary_only() {
        let p = optimize_op(&spec(), Platform::Tpuv4i, &MODEL, MatMul::new(1024, 768, 768), 1);
        assert_eq!(p.stationary(), Stationary::Ws);
        assert_eq!(p.shape(), (128, 128));
    }

    #[test]
    fn flexible_stationary_never_hurts() {
        // Gemmini's space strictly contains TPUv4i's, UnfCU's contains
        // Gemmini's: cycles and MA must be monotone along that chain.
        let shapes = [
            MatMul::new(1024, 64, 1024),
            MatMul::new(16384, 768, 768),
            MatMul::new(256, 4096, 256),
        ];
        for mm in shapes {
            let tpu = optimize_op(&spec(), Platform::Tpuv4i, &MODEL, mm, 4);
            let gem = optimize_op(&spec(), Platform::Gemmini, &MODEL, mm, 4);
            let unf = optimize_op(&spec(), Platform::UnfCu, &MODEL, mm, 4);
            assert!(gem.cycles() <= tpu.cycles(), "{mm}");
            assert!(unf.total_ma() <= gem.total_ma(), "{mm}");
        }
    }

    #[test]
    fn small_reduction_dim_hurts_rigid_ws() {
        // Attention QK^T per head: K = 64 < 128. TPU's weight panel is half
        // idle; Planaria's fission and UnfCU's reshape recover utilization.
        let mm = MatMul::new(1024, 64, 1024);
        let tpu = optimize_op(&spec(), Platform::Tpuv4i, &MODEL, mm, 64);
        let pla = optimize_op(&spec(), Platform::Planaria, &MODEL, mm, 64);
        let unf = optimize_op(&spec(), Platform::UnfCu, &MODEL, mm, 64);
        assert!(pla.compute_cycles() < tpu.compute_cycles());
        assert!(unf.compute_cycles() < tpu.compute_cycles());
    }

    #[test]
    fn cycles_overlap_compute_and_dram() {
        let p = optimize_op(&spec(), Platform::FuseCu, &MODEL, MatMul::new(512, 512, 512), 1);
        assert_eq!(p.cycles(), p.compute_cycles().max(p.dram_cycles()));
        assert!(p.macs() == 512 * 512 * 512);
    }

    #[test]
    fn count_scales_work() {
        let mm = MatMul::new(512, 512, 512);
        let one = optimize_op(&spec(), Platform::UnfCu, &MODEL, mm, 1);
        let eight = optimize_op(&spec(), Platform::UnfCu, &MODEL, mm, 8);
        assert_eq!(eight.total_ma(), 8 * one.total_ma());
        assert!(eight.compute_cycles() >= 2 * one.compute_cycles());
    }

    #[test]
    fn cache_key_ignores_bandwidth_and_cu_count() {
        // Regression for the PR 1 bug: keying the operator cache on the
        // full ArraySpec made every bandwidth point of the ablation sweep
        // a miss. Candidate generation depends only on the array edge and
        // the buffer budget.
        let mm = MatMul::new(1024, 64, 1024);
        let base = spec();
        let fast = ArraySpec {
            bw_elems_per_cycle: 4 * base.bw_elems_per_cycle,
            ..base
        };
        let wide = ArraySpec {
            num_cus: 2 * base.num_cus,
            ..base
        };
        let key = tile_key(&base, Platform::UnfCu, &MODEL, mm);
        assert_eq!(key, tile_key(&fast, Platform::UnfCu, &MODEL, mm));
        assert_eq!(key, tile_key(&wide, Platform::UnfCu, &MODEL, mm));
        // Inputs that do change the candidates still split the key.
        let bigger = base.with_buffer(2 * base.buffer_elems);
        assert_ne!(key, tile_key(&bigger, Platform::UnfCu, &MODEL, mm));
        assert_ne!(key, tile_key(&base, Platform::Tpuv4i, &MODEL, mm));
    }

    #[test]
    fn cached_selection_matches_uncached() {
        // The cached path recombines cached candidates with per-call
        // selection; it must be indistinguishable from the direct path
        // across the spec fields excluded from the key.
        let mm = MatMul::new(1024, 768, 768);
        let base = spec();
        for bw in [256u64, 448, 1024] {
            for cus in [1u64, 4] {
                let s = ArraySpec {
                    bw_elems_per_cycle: bw,
                    num_cus: cus,
                    ..base
                };
                for count in [1u64, 64] {
                    let direct = optimize_op(&s, Platform::FuseCu, &MODEL, mm, count);
                    let cached = optimize_op_cached(&s, Platform::FuseCu, &MODEL, mm, count);
                    assert_eq!(direct.stationary(), cached.stationary());
                    assert_eq!(direct.shape(), cached.shape());
                    assert_eq!(direct.dataflow(), cached.dataflow());
                    assert_eq!(direct.total_ma(), cached.total_ma());
                    assert_eq!(direct.cycles(), cached.cycles());
                }
            }
        }
    }

    #[test]
    fn rigid_platforms_pay_more_memory_traffic() {
        // The Fig 10 mechanism: panel staging re-streams the non-resident
        // operands per panel; flexible tiling aggregates.
        let mm = MatMul::new(16384, 768, 768);
        let tpu = optimize_op(&spec(), Platform::Tpuv4i, &MODEL, mm, 1);
        let unf = optimize_op(&spec(), Platform::UnfCu, &MODEL, mm, 1);
        assert!(tpu.total_ma() > 2 * unf.total_ma());
    }
}
