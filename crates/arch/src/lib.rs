//! # fusecu-arch — spatial-accelerator platform and performance models
//!
//! Reproduces §IV (FuseCU) and the §V evaluation methodology: each platform
//! is a *restriction of the dataflow space* plus a *spatial mapping menu*,
//! evaluated with one shared cycle model (Fig 8's template: PE fabric +
//! on-chip buffer + 1 TB/s memory port).
//!
//! | platform | stationary | tiling flexibility | fusion |
//! |---|---|---|---|
//! | TPUv4i   | WS          | low (array-aligned tiles) | — |
//! | Gemmini  | WS, OS      | low                       | — |
//! | Planaria | WS          | high (array fission)      | — |
//! | UnfCU    | WS, OS, IS  | middle (square/wide/narrow reshape) | — |
//! | FuseCU   | WS, OS, IS  | middle                    | tile + column |
//!
//! All platforms use the TPUv4i compute configuration: four 128×128 PE
//! compute units and 1 TB/s of on-chip bandwidth (§V-A). Every platform's
//! dataflow is optimized *within its supported space* ("All designs undergo
//! our optimization process … for fair comparisons").
//!
//! The cycle model charges, per spatial tile, the streaming depth of the
//! moving dimension plus systolic fill/drain (`d₃ + A + B` on an `A×B`
//! array), overlaps compute with memory (`max(compute, DRAM)`), and defines
//! utilization as achieved MACs over `cycles × peak MACs/cycle` — the
//! quantity Fig 10's line chart plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod eval;
pub mod flex;
pub mod fused;
pub mod intra;
pub mod latency;
pub mod mapping;
pub mod persist;
pub mod platform;
pub mod spec;
pub mod stationary;

pub use energy::EnergyModel;
pub use eval::{evaluate_graph, try_evaluate_graph, GraphPerf};
pub use flex::TilingFlex;
pub use intra::{
    op_cache_clear, op_cache_counters, op_cache_evict_all, op_cache_preload, op_cache_snapshot,
    op_cache_stats, op_candidates, optimize_op, optimize_op_cached, select_op,
    try_optimize_op_cached, OpCandidate, OpPerf, TileKey,
};
pub use latency::{fused_compute_cycles, fused_latency, nest_compute_cycles, nest_latency};
pub use mapping::{classify_intermediate, recommended_mapping, IntermediateShape};
pub use platform::Platform;
pub use spec::ArraySpec;
pub use stationary::Stationary;
