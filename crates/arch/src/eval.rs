//! Whole-graph evaluation: the Fig 10 / Fig 11 methodology.
//!
//! Every matmul (or, on FuseCU, every profitable fused pair) is optimized
//! within the platform's dataflow space and executed back to back; memory
//! traffic and compute overlap per step (double buffering). Softmax and
//! elementwise nodes ride along in the producer's write-back path (the
//! baseline systolic array already has the softmax unit, §V-C) and add
//! neither traffic nor cycles of their own.

use std::fmt;

use fusecu_dataflow::CostModel;
use fusecu_fusion::graph_planner::{try_plan_graph_cached, GraphStep};
use fusecu_ir::OpGraph;

use crate::fused::{FusedChainPerf, FusedMapping, FusedPerf};
use crate::intra::{try_optimize_op_cached, OpPerf};
use crate::platform::Platform;
use crate::spec::ArraySpec;

/// One scheduled step of a graph execution.
#[derive(Debug, Clone)]
pub enum StepPerf {
    /// A matmul executed alone.
    Solo(OpPerf),
    /// A fused pair on FuseCU.
    Fused(FusedPerf),
    /// A k-ary fused chain on FuseCU (depth three or more).
    FusedChain(FusedChainPerf),
}

impl StepPerf {
    /// Total memory access of the step.
    pub fn total_ma(&self) -> u64 {
        match self {
            StepPerf::Solo(p) => p.total_ma(),
            StepPerf::Fused(p) => p.total_ma(),
            StepPerf::FusedChain(p) => p.total_ma(),
        }
    }

    /// Execution cycles of the step.
    pub fn cycles(&self) -> u64 {
        match self {
            StepPerf::Solo(p) => p.cycles(),
            StepPerf::Fused(p) => p.cycles(),
            StepPerf::FusedChain(p) => p.cycles(),
        }
    }

    /// MACs of the step.
    pub fn macs(&self) -> u64 {
        match self {
            StepPerf::Solo(p) => p.macs(),
            StepPerf::Fused(p) => p.macs(),
            StepPerf::FusedChain(p) => p.macs(),
        }
    }
}

/// The evaluated performance of a whole operator graph on one platform.
#[derive(Debug, Clone)]
pub struct GraphPerf {
    platform: Platform,
    steps: Vec<StepPerf>,
}

impl GraphPerf {
    /// The platform evaluated.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The scheduled steps.
    pub fn steps(&self) -> &[StepPerf] {
        &self.steps
    }

    /// Total memory access in elements.
    pub fn total_ma(&self) -> u64 {
        self.steps.iter().map(StepPerf::total_ma).sum()
    }

    /// Total execution cycles.
    pub fn total_cycles(&self) -> u64 {
        self.steps.iter().map(StepPerf::cycles).sum()
    }

    /// Total MACs.
    pub fn total_macs(&self) -> u64 {
        self.steps.iter().map(StepPerf::macs).sum()
    }

    /// Achieved fraction of peak FLOPs — the Fig 10 line metric.
    pub fn utilization(&self, spec: &ArraySpec) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            return 0.0;
        }
        self.total_macs() as f64 / (cycles as f64 * spec.peak_macs_per_cycle() as f64)
    }

    /// Number of fused steps executed — pairs and deeper chains (zero on
    /// non-fusing platforms).
    pub fn fused_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| !matches!(s, StepPerf::Solo(_)))
            .count()
    }

    /// The fused mappings used, for reporting.
    pub fn fused_mappings(&self) -> Vec<FusedMapping> {
        self.steps
            .iter()
            .filter_map(|s| match s {
                StepPerf::Fused(p) => Some(p.mapping()),
                StepPerf::Solo(_) | StepPerf::FusedChain(_) => None,
            })
            .collect()
    }

    /// A per-step execution report: what ran where, with what dataflow,
    /// and what it cost. The machine-readable companion of Fig 10's bars.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} execution plan ({} steps, {} fused):",
            self.platform,
            self.steps.len(),
            self.fused_steps()
        );
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                StepPerf::Solo(p) => {
                    let _ = writeln!(
                        out,
                        "  [{i}] solo  {} x{}  {} on {}x{}  ma={} cycles={} ({})",
                        p.mm(),
                        p.count(),
                        p.stationary(),
                        p.shape().0,
                        p.shape().1,
                        p.total_ma(),
                        p.cycles(),
                        if p.dram_cycles() > p.compute_cycles() {
                            "memory-bound"
                        } else {
                            "compute-bound"
                        }
                    );
                }
                StepPerf::Fused(p) => {
                    let _ = writeln!(
                        out,
                        "  [{i}] fused {} x{}  {} on {} pipeline(s)  ma={} cycles={} ({})",
                        p.fused().pair(),
                        p.count(),
                        p.mapping(),
                        p.pipelines(),
                        p.total_ma(),
                        p.cycles(),
                        if p.dram_cycles() > p.compute_cycles() {
                            "memory-bound"
                        } else {
                            "compute-bound"
                        }
                    );
                }
                StepPerf::FusedChain(p) => {
                    let _ = writeln!(
                        out,
                        "  [{i}] chain {} x{}  {} pipeline(s)  ma={} cycles={} ({})",
                        p.chain().chain(),
                        p.count(),
                        p.pipelines(),
                        p.total_ma(),
                        p.cycles(),
                        if p.dram_cycles() > p.compute_cycles() {
                            "memory-bound"
                        } else {
                            "compute-bound"
                        }
                    );
                }
            }
        }
        let _ = write!(
            out,
            "  total: ma={} cycles={}",
            self.total_ma(),
            self.total_cycles()
        );
        out
    }
}

impl fmt::Display for GraphPerf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: MA={} elems, cycles={}, {} fused steps",
            self.platform,
            self.total_ma(),
            self.total_cycles(),
            self.fused_steps()
        )
    }
}

/// Evaluates an operator graph on a platform.
///
/// Non-fusing platforms run every matmul solo. FuseCU plans the whole
/// graph with Principle 4 (`fusecu-fusion`'s DAG planner): the
/// maximum-saving matching over the fusable-link DAG decides which pairs
/// fuse — correct at fan-in/fan-out sites where chain decomposition was
/// insertion-order dependent — and profitable pairs execute with tile or
/// column fusion.
///
/// # Panics
///
/// Panics when the buffer cannot hold a unit tiling (`buffer < 3`). Use
/// [`try_evaluate_graph`] to probe sub-minimal buffers gracefully.
pub fn evaluate_graph(
    spec: &ArraySpec,
    platform: Platform,
    model: &CostModel,
    graph: &OpGraph,
) -> GraphPerf {
    spec.validate();
    try_evaluate_graph(spec, platform, model, graph).unwrap_or_else(|| {
        panic!(
            "buffer of {} elements cannot hold any tile of the graph",
            spec.buffer_elems
        )
    })
}

/// Fallible form of [`evaluate_graph`]: `None` when the buffer cannot
/// hold even a unit tiling of some matmul, instead of panicking.
///
/// On fusing platforms, if whole-graph planning itself is unavailable at
/// this buffer the evaluation degrades to the all-solo schedule rather
/// than giving up — fusion is an optimization, never a requirement.
pub fn try_evaluate_graph(
    spec: &ArraySpec,
    platform: Platform,
    model: &CostModel,
    graph: &OpGraph,
) -> Option<GraphPerf> {
    let solo = |mm, count| try_optimize_op_cached(spec, platform, model, mm, count);
    let mut steps = Vec::new();
    let plan = platform
        .supports_fusion()
        .then(|| try_plan_graph_cached(model, graph, spec.buffer_elems))
        .flatten();
    match plan {
        Some(plan) => {
            for step in plan.steps() {
                match step {
                    GraphStep::Solo { node, count, .. } => {
                        let mm = graph
                            .node(*node)
                            .kind
                            .as_matmul()
                            .expect("plan solo steps are matmul nodes");
                        steps.push(StepPerf::Solo(solo(mm, *count)?));
                    }
                    GraphStep::Fused { count, fused, .. } => {
                        steps.push(StepPerf::Fused(FusedPerf::score(spec, *fused, *count)));
                    }
                    GraphStep::FusedChain { count, chain, .. } => {
                        steps.push(StepPerf::FusedChain(FusedChainPerf::score(
                            spec,
                            chain.clone(),
                            *count,
                        )));
                    }
                }
            }
        }
        None => {
            for (_, mm, count) in graph.matmuls() {
                steps.push(StepPerf::Solo(solo(mm, count)?));
            }
        }
    }
    Some(GraphPerf { platform, steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_models::zoo;

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    fn spec() -> ArraySpec {
        ArraySpec::paper_default()
    }

    #[test]
    fn fusecu_beats_tpu_on_bert() {
        let g = zoo::bert().build_graph();
        let tpu = evaluate_graph(&spec(), Platform::Tpuv4i, &MODEL, &g);
        let fuse = evaluate_graph(&spec(), Platform::FuseCu, &MODEL, &g);
        assert!(fuse.total_ma() < tpu.total_ma());
        assert!(fuse.total_cycles() < tpu.total_cycles());
        assert!(fuse.fused_steps() >= 1);
        assert_eq!(tpu.fused_steps(), 0);
        assert_eq!(fuse.total_macs(), tpu.total_macs());
    }

    #[test]
    fn unfcu_sits_between_tpu_and_fusecu() {
        let g = zoo::blenderbot().build_graph();
        let tpu = evaluate_graph(&spec(), Platform::Tpuv4i, &MODEL, &g);
        let unf = evaluate_graph(&spec(), Platform::UnfCu, &MODEL, &g);
        let fuse = evaluate_graph(&spec(), Platform::FuseCu, &MODEL, &g);
        assert!(unf.total_ma() <= tpu.total_ma());
        assert!(fuse.total_ma() <= unf.total_ma());
        assert_eq!(unf.fused_steps(), 0);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let g = zoo::bert().build_graph();
        for p in Platform::ALL {
            let perf = evaluate_graph(&spec(), p, &MODEL, &g);
            let u = perf.utilization(&spec());
            assert!(u > 0.0 && u <= 1.0, "{p}: {u}");
        }
    }

    #[test]
    fn fusecu_utilization_highest() {
        let g = zoo::bert().build_graph();
        let utils: Vec<(Platform, f64)> = Platform::ALL
            .iter()
            .map(|p| (*p, evaluate_graph(&spec(), *p, &MODEL, &g).utilization(&spec())))
            .collect();
        let fuse = utils.iter().find(|(p, _)| *p == Platform::FuseCu).unwrap().1;
        let tpu = utils.iter().find(|(p, _)| *p == Platform::Tpuv4i).unwrap().1;
        assert!(fuse > tpu, "FuseCU {fuse} vs TPUv4i {tpu}");
    }

    #[test]
    fn tiny_buffer_yields_none_instead_of_panicking() {
        // Regression: a sub-minimal buffer used to abort inside the chain
        // planner's unwrap before evaluation could even report it.
        let g = zoo::blenderbot().build_graph();
        for platform in [Platform::FuseCu, Platform::Tpuv4i] {
            let starved = ArraySpec {
                buffer_elems: 2,
                ..spec()
            };
            assert!(
                try_evaluate_graph(&starved, platform, &MODEL, &g).is_none(),
                "{platform}"
            );
            // Three elements is the minimum footprint of any dataflow —
            // the smallest buffer with a definable schedule.
            let minimal = ArraySpec {
                buffer_elems: 3,
                ..spec()
            };
            let perf = try_evaluate_graph(&minimal, platform, &MODEL, &g)
                .unwrap_or_else(|| panic!("{platform} must evaluate at the minimum buffer"));
            assert!(perf.total_ma() > 0);
        }
    }

    #[test]
    fn try_evaluate_matches_evaluate_on_valid_specs() {
        let g = zoo::bert().build_graph();
        for platform in [Platform::FuseCu, Platform::UnfCu] {
            let strict = evaluate_graph(&spec(), platform, &MODEL, &g);
            let lax = try_evaluate_graph(&spec(), platform, &MODEL, &g).unwrap();
            assert_eq!(strict.total_ma(), lax.total_ma(), "{platform}");
            assert_eq!(strict.total_cycles(), lax.total_cycles(), "{platform}");
            assert_eq!(strict.fused_steps(), lax.fused_steps(), "{platform}");
        }
    }

    #[test]
    fn display_summarizes() {
        let g = zoo::blenderbot().build_graph();
        let perf = evaluate_graph(&spec(), Platform::FuseCu, &MODEL, &g);
        let s = perf.to_string();
        assert!(s.contains("FuseCU") && s.contains("cycles="), "{s}");
    }

    #[test]
    fn report_details_every_step() {
        let g = zoo::blenderbot().build_graph();
        let perf = evaluate_graph(&spec(), Platform::FuseCu, &MODEL, &g);
        let r = perf.report();
        assert!(r.contains("fused"), "{r}");
        assert!(r.contains("solo"), "{r}");
        assert!(r.matches("bound").count() >= perf.steps().len(), "{r}");
        assert!(r.contains("total: ma="), "{r}");
    }
}
