//! FuseCU's fused-pair execution: tile fusion and column fusion (§IV-A).
//!
//! * **Tile fusion** (Fig 5(a) / Fig 7(c)-(d)): the intermediate tile
//!   `C[T_M, T_L]` is the stationary tile; computation alternates OS
//!   (producer, streaming `K`) and IS (consumer, streaming `N`) phases in
//!   place — `C` never leaves the PEs.
//! * **Column fusion** (Fig 5(b) / Fig 7(e)): the fabric splits into a
//!   producer part (IS, `A` stationary) and a consumer part (OS, `E`
//!   stationary); columns of `C` stream between them through the inter-CU
//!   muxes, pipelined along the shared `L` dimension.
//!
//! Either mapping can run at several granularities: one fused pipeline
//! spanning all four CUs, or several independent pipelines on CU subsets
//! processing different instances (per-head attention) in parallel. Each
//! CU group reshapes square/wide/narrow exactly like the unfused fabric
//! (Fig 7 notes wide tile fusion and narrow column fusion exist but are
//! omitted from the figure). The cheapest (mapping, granularity, shape)
//! combination wins, reproducing the paper's rule of thumb: tile-like
//! intermediate tiles map as stationary tiles, column-like ones as moving
//! tiles.

use std::fmt;

use fusecu_dataflow::CostModel;
use fusecu_fusion::{
    optimize_pair_cached, FusedChain, FusedChainDataflow, FusedDataflow, FusedDim, FusedPair,
};

use crate::flex::stream_cycles;
use crate::spec::ArraySpec;

/// Which fused mapping executes a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusedMapping {
    /// OS→IS phases in place, `C` as stationary tile.
    Tile,
    /// IS part feeding OS part, `C` as moving columns.
    Column,
}

impl fmt::Display for FusedMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FusedMapping::Tile => "tile fusion",
            FusedMapping::Column => "column fusion",
        })
    }
}

/// Logical shapes available to a group of `cus` compute units: the square
/// arrangement plus the 4:1 wide and 1:4 narrow reshapes, PE count
/// conserved.
fn group_shapes(spec: &ArraySpec, cus: u64) -> Vec<(u64, u64)> {
    let n = spec.pe_dim;
    match cus {
        1 => vec![(n, n), (2 * n, n / 2), (n / 2, 2 * n)],
        2 => vec![(2 * n, n), (n, 2 * n), (4 * n, n / 2), (n / 2, 4 * n)],
        4 => vec![(2 * n, 2 * n), (4 * n, n), (n, 4 * n)],
        _ => panic!("CU groups are 1, 2, or 4 units"),
    }
}

/// Compute cycles of one fused-pair instance under tile fusion on a group
/// of `cus` compute units: each `C` spatial tile hosts a producer phase
/// (stream `K`) and a consumer phase (stream `N`), each paying one systolic
/// fill/drain.
pub fn tile_fusion_cycles(spec: &ArraySpec, fused: &FusedDataflow, cus: u64) -> u64 {
    let pair = fused.pair();
    let (m, k, l, n) = (
        pair.dim(FusedDim::M),
        pair.dim(FusedDim::K),
        pair.dim(FusedDim::L),
        pair.dim(FusedDim::N),
    );
    group_shapes(spec, cus)
        .into_iter()
        .map(|(a, b)| {
            let tiles = m.div_ceil(a) * l.div_ceil(b);
            tiles * (k + n + 2 * (a + b))
        })
        .min()
        .expect("non-empty shape menu")
}

/// Compute cycles of one fused-pair instance under column fusion with
/// producer and consumer halves of `cus` compute units each.
///
/// The halves run pipelined along the shared `L` stream; throughput is the
/// slower half, plus one consumer drain at the end.
pub fn column_fusion_cycles(spec: &ArraySpec, fused: &FusedDataflow, cus: u64) -> u64 {
    let pair = fused.pair();
    let (m, k, l, n) = (
        pair.dim(FusedDim::M),
        pair.dim(FusedDim::K),
        pair.dim(FusedDim::L),
        pair.dim(FusedDim::N),
    );
    let best_half = |d2: u64| {
        group_shapes(spec, cus)
            .into_iter()
            .map(|(a, b)| stream_cycles(m, d2, l, a, b, 1))
            .min()
            .expect("non-empty shape menu")
    };
    best_half(k).max(best_half(n)) + spec.pe_dim
}

/// The performance of a fused pair on FuseCU.
#[derive(Debug, Clone, Copy)]
pub struct FusedPerf {
    fused: FusedDataflow,
    count: u64,
    mapping: FusedMapping,
    pipelines: u64,
    compute_cycles: u64,
    dram_cycles: u64,
}

impl FusedPerf {
    /// Scores a fused dataflow over every (mapping, granularity) option and
    /// keeps the cheapest, overlapping compute with the fused memory
    /// traffic.
    ///
    /// # Panics
    ///
    /// Panics when `count` is zero.
    pub fn score(spec: &ArraySpec, fused: FusedDataflow, count: u64) -> FusedPerf {
        assert!(count > 0, "instance count must be non-zero");
        let mut best: Option<(u64, FusedMapping, u64)> = None; // (cycles, mapping, pipelines)
        let mut consider = |cycles: u64, mapping: FusedMapping, pipelines: u64| {
            if best.is_none_or(|(c, ..)| cycles < c) {
                best = Some((cycles, mapping, pipelines));
            }
        };
        for cus in [1u64, 2, 4] {
            if cus > spec.num_cus {
                continue;
            }
            let pipelines = spec.num_cus / cus;
            let per = tile_fusion_cycles(spec, &fused, cus);
            consider(count.div_ceil(pipelines) * per, FusedMapping::Tile, pipelines);
        }
        for half_cus in [1u64, 2] {
            if 2 * half_cus > spec.num_cus {
                continue;
            }
            let pipelines = spec.num_cus / (2 * half_cus);
            let per = column_fusion_cycles(spec, &fused, half_cus);
            consider(
                count.div_ceil(pipelines) * per,
                FusedMapping::Column,
                pipelines,
            );
        }
        let (compute_cycles, mapping, pipelines) =
            best.expect("at least one fused mapping is always available");
        FusedPerf {
            fused,
            count,
            mapping,
            pipelines,
            compute_cycles,
            dram_cycles: (fused.total_ma() * count).div_ceil(spec.bw_elems_per_cycle),
        }
    }

    /// Optimizes and scores the fused execution of `pair` within the
    /// spec's buffer, or `None` when no fused tiling fits
    /// (`buffer_elems < 3`) — callers fall back to executing the two
    /// operators unfused. This is the safe entry point; use it instead of
    /// unwrapping `optimize_pair` before [`FusedPerf::score`].
    ///
    /// # Panics
    ///
    /// Panics when `count` is zero.
    pub fn try_plan(
        spec: &ArraySpec,
        model: &CostModel,
        pair: FusedPair,
        count: u64,
    ) -> Option<FusedPerf> {
        let fused = optimize_pair_cached(model, pair, spec.buffer_elems)?;
        Some(FusedPerf::score(spec, fused, count))
    }

    /// The fused dataflow.
    pub fn fused(&self) -> &FusedDataflow {
        &self.fused
    }

    /// Instance count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The chosen mapping.
    pub fn mapping(&self) -> FusedMapping {
        self.mapping
    }

    /// Number of independent fused pipelines running instances in parallel.
    pub fn pipelines(&self) -> u64 {
        self.pipelines
    }

    /// Total memory access over all instances.
    pub fn total_ma(&self) -> u64 {
        self.fused.total_ma() * self.count
    }

    /// Wall-clock compute cycles over all instances.
    pub fn compute_cycles(&self) -> u64 {
        self.compute_cycles
    }

    /// DRAM transfer cycles over all instances.
    pub fn dram_cycles(&self) -> u64 {
        self.dram_cycles
    }

    /// Execution cycles with compute/DRAM overlap.
    pub fn cycles(&self) -> u64 {
        self.compute_cycles.max(self.dram_cycles)
    }

    /// Total MACs over all instances.
    pub fn macs(&self) -> u64 {
        self.fused.pair().macs() * self.count
    }
}

/// Compute cycles of one k-ary fused chain instance on a group of `cus`
/// compute units: the phases execute back to back, each streaming its
/// reduction dimension through the group with the phase's output panel
/// stationary. The interior panels never leave the chip — there is no
/// inter-phase DRAM traffic — but every phase still pays its systolic
/// fill/drain, so deeper chains trade compute overhead for memory access
/// exactly as the cost model prices them.
pub fn chain_fusion_cycles(spec: &ArraySpec, chain: &FusedChain, cus: u64) -> u64 {
    (0..chain.depth())
        .map(|i| {
            group_shapes(spec, cus)
                .into_iter()
                .map(|(a, b)| stream_cycles(chain.m(), chain.col(i + 1), chain.col(i), a, b, 1))
                .min()
                .expect("non-empty shape menu")
        })
        .sum()
}

/// The performance of a k-ary fused chain on FuseCU.
#[derive(Debug, Clone)]
pub struct FusedChainPerf {
    chain: FusedChainDataflow,
    count: u64,
    pipelines: u64,
    compute_cycles: u64,
    dram_cycles: u64,
}

impl FusedChainPerf {
    /// Scores a fused chain dataflow over every pipeline granularity and
    /// keeps the cheapest, overlapping compute with the chain's memory
    /// traffic — the k-ary analogue of [`FusedPerf::score`].
    ///
    /// # Panics
    ///
    /// Panics when `count` is zero.
    pub fn score(spec: &ArraySpec, chain: FusedChainDataflow, count: u64) -> FusedChainPerf {
        assert!(count > 0, "instance count must be non-zero");
        let mut best: Option<(u64, u64)> = None; // (cycles, pipelines)
        for cus in [1u64, 2, 4] {
            if cus > spec.num_cus {
                continue;
            }
            let pipelines = spec.num_cus / cus;
            let per = chain_fusion_cycles(spec, chain.chain(), cus);
            let cycles = count.div_ceil(pipelines) * per;
            if best.is_none_or(|(c, _)| cycles < c) {
                best = Some((cycles, pipelines));
            }
        }
        let (compute_cycles, pipelines) =
            best.expect("at least one pipeline granularity is always available");
        let dram_cycles = (chain.total_ma() * count).div_ceil(spec.bw_elems_per_cycle);
        FusedChainPerf {
            chain,
            count,
            pipelines,
            compute_cycles,
            dram_cycles,
        }
    }

    /// The fused chain dataflow.
    pub fn chain(&self) -> &FusedChainDataflow {
        &self.chain
    }

    /// Instance count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of independent chain pipelines running instances in parallel.
    pub fn pipelines(&self) -> u64 {
        self.pipelines
    }

    /// Total memory access over all instances.
    pub fn total_ma(&self) -> u64 {
        self.chain.total_ma() * self.count
    }

    /// Wall-clock compute cycles over all instances.
    pub fn compute_cycles(&self) -> u64 {
        self.compute_cycles
    }

    /// DRAM transfer cycles over all instances.
    pub fn dram_cycles(&self) -> u64 {
        self.dram_cycles
    }

    /// Execution cycles with compute/DRAM overlap.
    pub fn cycles(&self) -> u64 {
        self.compute_cycles.max(self.dram_cycles)
    }

    /// Total MACs over all instances.
    pub fn macs(&self) -> u64 {
        self.chain.chain().macs() * self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_dataflow::CostModel;
    use fusecu_fusion::{optimize_pair, FusedPair};
    use fusecu_ir::MatMul;

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    fn spec() -> ArraySpec {
        ArraySpec::paper_default()
    }

    fn fused_for(m: u64, k: u64, l: u64, n: u64) -> FusedDataflow {
        let pair = FusedPair::try_new(MatMul::new(m, k, l), MatMul::new(m, l, n)).unwrap();
        optimize_pair(&MODEL, pair, spec().buffer_elems)
            .expect("paper-default 512 KiB buffer admits a fused tiling for every test pair")
    }

    #[test]
    fn tiny_buffer_yields_no_fused_plan_instead_of_panicking() {
        // Regression: scoring used to require unwrapping `optimize_pair`,
        // which aborts on buffers below the 3-element fused minimum.
        let pair =
            FusedPair::try_new(MatMul::new(64, 64, 64), MatMul::new(64, 64, 64)).unwrap();
        let tiny = ArraySpec {
            buffer_elems: 2,
            ..spec()
        };
        assert!(FusedPerf::try_plan(&tiny, &MODEL, pair, 4).is_none());
        // Three elements is the fused minimum: the safe path plans it.
        let minimal = ArraySpec {
            buffer_elems: 3,
            ..spec()
        };
        let perf = FusedPerf::try_plan(&minimal, &MODEL, pair, 4)
            .expect("three elements admit the scalar fused pipeline");
        assert!(perf.fused().footprint() <= 3);
        // On a feasible buffer the safe path agrees with direct scoring.
        let direct = FusedPerf::score(
            &spec(),
            optimize_pair(&MODEL, pair, spec().buffer_elems).unwrap(),
            4,
        );
        let planned = FusedPerf::try_plan(&spec(), &MODEL, pair, 4).unwrap();
        assert_eq!(planned.fused(), direct.fused());
        assert_eq!(planned.cycles(), direct.cycles());
        assert_eq!(planned.mapping(), direct.mapping());
    }

    #[test]
    fn group_shapes_conserve_pes() {
        let s = spec();
        for cus in [1u64, 2, 4] {
            for (a, b) in group_shapes(&s, cus) {
                assert_eq!(a * b, cus * s.pe_dim * s.pe_dim, "cus={cus}");
            }
        }
    }

    #[test]
    fn some_mapping_is_chosen_and_overlapped() {
        let perf = FusedPerf::score(&spec(), fused_for(1024, 64, 1024, 64), 192);
        assert!(perf.compute_cycles() > 0);
        assert_eq!(perf.cycles(), perf.compute_cycles().max(perf.dram_cycles()));
        assert_eq!(perf.macs(), 192 * 2 * 1024 * 64 * 1024);
        assert!(perf.pipelines() >= 1 && perf.pipelines() <= 4);
    }

    #[test]
    fn many_instances_exploit_pipeline_parallelism() {
        let fused = fused_for(1024, 64, 1024, 64);
        let many = FusedPerf::score(&spec(), fused, 192);
        let one = FusedPerf::score(&spec(), fused, 1);
        // 192 instances must not cost 192x a single instance: narrow
        // pipelines on CU subsets run heads in parallel.
        assert!(many.compute_cycles() < 192 * one.compute_cycles());
    }

    #[test]
    fn array_matched_batched_pairs_prefer_tile_fusion() {
        // The paper's Single-NRA tile-fusion shape: C exactly covers one
        // CU (128x128) and K, N stream long. With several instances the
        // four per-CU tile pipelines beat the column arrangement, whose
        // producer must iterate the large A tile.
        let fused = fused_for(128, 4096, 128, 4096);
        let per_cu_tile = tile_fusion_cycles(&spec(), &fused, 1);
        let per_column = column_fusion_cycles(&spec(), &fused, 2);
        // Per instance the two are close; across 8 instances the 4-way
        // tile pipelines win.
        let perf = FusedPerf::score(&spec(), fused, 8);
        assert_eq!(perf.mapping(), FusedMapping::Tile);
        assert_eq!(perf.pipelines(), 4);
        assert_eq!(perf.compute_cycles(), 2 * per_cu_tile);
        assert!(2 * per_cu_tile < 8 * per_column);
    }

    #[test]
    fn attention_pairs_prefer_column_fusion() {
        // Per-head attention: tiny K and N, huge L — the classic
        // column-fusion shape (Fig 5(b)).
        let perf = FusedPerf::score(&spec(), fused_for(1024, 64, 1024, 64), 192);
        assert_eq!(perf.mapping(), FusedMapping::Column);
    }

    #[test]
    fn column_halves_reshape_for_small_dims() {
        // Producer stationary (M, K) = (1024, 64): the 4N x N/2 = (512, 64)
        // reshape covers K exactly; the rigid (256, 128) half wastes half
        // its columns.
        let s = spec();
        let fused = fused_for(1024, 64, 1024, 64);
        let cycles = column_fusion_cycles(&s, &fused, 2);
        let rigid_producer = stream_cycles(1024, 64, 1024, 2 * s.pe_dim, s.pe_dim, 1);
        assert!(cycles < 2 * rigid_producer);
    }

    #[test]
    fn mapping_names_render() {
        assert_eq!(FusedMapping::Tile.to_string(), "tile fusion");
        assert_eq!(FusedMapping::Column.to_string(), "column fusion");
    }
}
