//! Property tests for the platform and cycle models.

use proptest::prelude::*;

use fusecu_arch::{optimize_op, ArraySpec, Platform};
use fusecu_dataflow::CostModel;
use fusecu_ir::MatMul;

fn model() -> CostModel {
    CostModel::read_write()
}

fn arb_mm() -> impl Strategy<Value = MatMul> {
    (1u64..4096, 1u64..4096, 1u64..4096).prop_map(|(m, k, l)| MatMul::new(m, k, l))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every platform produces a feasible, internally consistent operator
    /// plan for any shape.
    #[test]
    fn op_plans_are_consistent(mm in arb_mm(), count in 1u64..64) {
        let spec = ArraySpec::paper_default();
        for p in Platform::ALL {
            let perf = optimize_op(&spec, p, &model(), mm, count);
            prop_assert!(perf.dataflow().buffer_elems() <= spec.buffer_elems, "{p}");
            prop_assert_eq!(perf.cycles(), perf.compute_cycles().max(perf.dram_cycles()));
            prop_assert_eq!(perf.macs(), mm.macs() * count);
            prop_assert!(p.stationaries().contains(&perf.stationary()), "{p}");
            // Compute can never beat the ideal roofline.
            let ideal = (mm.macs() * count).div_ceil(spec.peak_macs_per_cycle());
            prop_assert!(perf.compute_cycles() >= ideal, "{p}: beats the roofline");
        }
    }

    /// Space containment: TPUv4i ⊂ Gemmini ⊂ UnfCU, and FuseCU == UnfCU on
    /// unfused single operators.
    #[test]
    fn space_containment_on_single_ops(mm in arb_mm()) {
        let spec = ArraySpec::paper_default();
        let cost = |p: Platform| {
            let perf = optimize_op(&spec, p, &model(), mm, 1);
            (perf.total_ma(), perf.cycles())
        };
        let tpu = cost(Platform::Tpuv4i);
        let gem = cost(Platform::Gemmini);
        let unf = cost(Platform::UnfCu);
        let fuse = cost(Platform::FuseCu);
        // Containment is in the optimizer's lexicographic (MA, cycles)
        // objective: every rigid candidate is dominated by a free-tiling
        // candidate with no more traffic and no more cycles.
        prop_assert!(gem <= tpu);
        prop_assert!(unf <= gem, "UnfCU {unf:?} must not lose to Gemmini {gem:?}");
        prop_assert_eq!(fuse, unf, "FuseCU == UnfCU on unfused operators");
    }

    /// More buffer never hurts any platform on a single operator.
    #[test]
    fn buffer_monotonicity_per_platform(mm in arb_mm(), base_kib in 1u64..512, extra_kib in 0u64..4096) {
        for p in Platform::ALL {
            let small = ArraySpec::tpuv4i_with_buffer(base_kib * 1024);
            let large = ArraySpec::tpuv4i_with_buffer((base_kib + extra_kib) * 1024);
            let a = optimize_op(&small, p, &model(), mm, 1).total_ma();
            let b = optimize_op(&large, p, &model(), mm, 1).total_ma();
            prop_assert!(b <= a, "{p}: buffer growth raised MA {a} -> {b}");
        }
    }

    /// Higher bandwidth never slows execution. Under the MA-first
    /// objective the selected dataflow is bandwidth-independent (equal-MA
    /// ties see proportionally scaled DRAM cycles), so memory access stays
    /// put and the cycle count is monotone in bandwidth.
    #[test]
    fn more_bandwidth_never_slows(mm in arb_mm(), bw in 64u64..2048) {
        let mut slow = ArraySpec::paper_default();
        slow.bw_elems_per_cycle = bw;
        let mut fast = slow;
        fast.bw_elems_per_cycle = 2 * bw;
        for p in [Platform::Tpuv4i, Platform::FuseCu] {
            let a = optimize_op(&slow, p, &model(), mm, 1);
            let b = optimize_op(&fast, p, &model(), mm, 1);
            prop_assert!(b.cycles() <= a.cycles(), "{}", p);
            // The cycle-optimal dataflow under faster memory is also
            // feasible under slower memory, so its slow-memory cycle count
            // bounds the slow optimum from above.
            let b_on_slow = b
                .compute_cycles()
                .max((b.total_ma()).div_ceil(slow.bw_elems_per_cycle));
            prop_assert!(a.cycles() <= b_on_slow, "{}", p);
        }
    }
}

/// Recorded shrunk input from `properties.proptest-regressions` for
/// `more_bandwidth_never_slows`, pinned as a deterministic test: the seed
/// file's cc-hash encodes proptest-internal RNG state and cannot be
/// replayed portably, so the concrete input is checked explicitly here.
#[test]
fn regression_bandwidth_monotone_at_513_1222_769_bw107() {
    let mm = MatMul::new(513, 1222, 769);
    let bw = 107;
    let mut slow = ArraySpec::paper_default();
    slow.bw_elems_per_cycle = bw;
    let mut fast = slow;
    fast.bw_elems_per_cycle = 2 * bw;
    for p in [Platform::Tpuv4i, Platform::FuseCu] {
        let a = optimize_op(&slow, p, &model(), mm, 1);
        let b = optimize_op(&fast, p, &model(), mm, 1);
        assert!(b.cycles() <= a.cycles(), "{p}");
        let b_on_slow = b
            .compute_cycles()
            .max(b.total_ma().div_ceil(slow.bw_elems_per_cycle));
        assert!(a.cycles() <= b_on_slow, "{p}");
        // MA-first selection is bandwidth-independent: both specs must
        // choose the same buffer-level dataflow.
        assert_eq!(a.dataflow(), b.dataflow(), "{p}");
    }
}

/// The failing case that motivated the MA-first objective: with the old
/// cycle-first selection, growing UnfCU's buffer from 96 KiB to 148 KiB
/// *raised* memory access (261263430 -> 285496089) by trading MA for
/// compute overlap.
#[test]
fn regression_buffer_monotone_at_3707_3057_3405() {
    let mm = MatMul::new(3707, 3057, 3405);
    for p in Platform::ALL {
        let small = ArraySpec::tpuv4i_with_buffer(96 * 1024);
        let large = ArraySpec::tpuv4i_with_buffer(148 * 1024);
        let a = optimize_op(&small, p, &model(), mm, 1).total_ma();
        let b = optimize_op(&large, p, &model(), mm, 1).total_ma();
        assert!(b <= a, "{p}: buffer growth raised MA {a} -> {b}");
    }
}
