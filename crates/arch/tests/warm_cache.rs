//! Operator-cache key sharing, measured on the process-global cache.
//!
//! This lives in its own integration-test binary so the cache counters
//! start at zero and stay deterministic: a single #[test] is the only
//! code that touches the global operator cache in this process.

use fusecu_arch::{op_cache_stats, optimize_op_cached, ArraySpec, Platform};
use fusecu_dataflow::CostModel;
use fusecu_ir::MatMul;

#[test]
fn bandwidth_and_cu_sweeps_share_one_cache_entry() {
    let model = CostModel::read_write();
    let mm = MatMul::new(768, 512, 640);
    let base = ArraySpec::paper_default();

    // First evaluation computes the candidate list: one miss.
    let first = optimize_op_cached(&base, Platform::FuseCu, &model, mm, 4);
    let s = op_cache_stats();
    assert_eq!((s.hits, s.misses), (0, 1));

    // A bandwidth/CU-count/instance-count sweep re-scores the same
    // candidates: every further lookup hits. (The PR 1 cache keyed on the
    // whole ArraySpec, so each bandwidth point recomputed the expensive
    // tiling search from scratch.)
    let mut sweep = 0u64;
    for bw in [256u64, 448, 512, 1024] {
        for cus in [1u64, 2, 4] {
            let spec = ArraySpec {
                bw_elems_per_cycle: bw,
                num_cus: cus,
                ..base
            };
            let perf = optimize_op_cached(&spec, Platform::FuseCu, &model, mm, 4);
            assert_eq!(perf.total_ma(), first.total_ma());
            sweep += 1;
        }
    }
    let s = op_cache_stats();
    assert_eq!((s.hits, s.misses), (sweep, 1), "sweep points must share the entry");

    // Changing a tiling input (buffer budget) is a genuinely new key.
    let bigger = ArraySpec {
        buffer_elems: 2 * base.buffer_elems,
        ..base
    };
    optimize_op_cached(&bigger, Platform::FuseCu, &model, mm, 4);
    let s = op_cache_stats();
    assert_eq!(s.misses, 2);
}
