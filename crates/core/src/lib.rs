//! # fusecu — principle-based dataflow optimization and the FuseCU
//! operator-fused tensor accelerator
//!
//! A from-scratch reproduction of *"Principle-based Dataflow Optimization
//! for Communication Lower Bound in Operator-Fused Tensor Accelerator"*
//! (DAC 2025). This facade crate re-exports the full stack and provides the
//! end-to-end [`pipeline`] the examples and benchmark harness drive:
//!
//! * [`fusecu_ir`] — matmul/chain/graph IR;
//! * [`fusecu_dataflow`] — the loop-nest memory-access model and the
//!   closed-form Principles 1–3 optimizer;
//! * [`fusecu_fusion`] — fused dataflows and Principle 4;
//! * [`fusecu_search`] — the DAT-class exhaustive/genetic baseline;
//! * [`fusecu_models`] — the Table II transformer zoo;
//! * [`fusecu_arch`] — TPUv4i/Gemmini/Planaria/UnfCU/FuseCU platform and
//!   cycle models;
//! * [`fusecu_sim`] — the cycle-level XS-PE fabric simulator;
//! * [`fusecu_rtl`] — structural netlists and the 28 nm area model.
//!
//! ## Quickstart
//!
//! ```
//! use fusecu::prelude::*;
//!
//! // One-shot optimal dataflow for a BERT matmul in a 512 KiB buffer.
//! let mm = MatMul::new(1024, 768, 768);
//! let best = fusecu::optimize(mm, 512 * 1024);
//! assert_eq!(best.class(), Some(NraClass::Two));
//!
//! // Full platform comparison on a transformer layer.
//! let row = fusecu::pipeline::compare_platforms(&zoo::blenderbot());
//! assert!(row.normalized_ma(Platform::FuseCu) < 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod prelude;
pub mod server;

pub use fusecu_arch as arch;
pub use fusecu_dataflow as dataflow;
pub use fusecu_fusion as fusion;
pub use fusecu_ir as ir;
pub use fusecu_models as models;
pub use fusecu_rtl as rtl;
pub use fusecu_search as search;
pub use fusecu_sim as sim;

pub use fusecu_dataflow::principles::optimize;
pub use fusecu_fusion::decide;
