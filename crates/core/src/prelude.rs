//! Convenient glob import for examples and downstream users.
//!
//! ```
//! use fusecu::prelude::*;
//!
//! let df = fusecu::optimize(MatMul::new(256, 256, 256), 8_192);
//! assert!(df.total_ma() >= MatMul::new(256, 256, 256).ideal_ma());
//! ```

pub use fusecu_arch::{
    evaluate_graph, try_evaluate_graph, ArraySpec, EnergyModel, Platform, Stationary, TilingFlex,
};
pub use fusecu_dataflow::{
    BufferRegime, CostModel, Dataflow, LoopNest, MemoryAccess, NraClass, PartialSumPolicy, Tiling,
};
pub use fusecu_fusion::{
    optimize_chain, plan_graph, try_plan_dag_with, try_plan_graph, try_plan_graph_cached,
    try_plan_graph_chained, FusedChain, FusedChainDataflow, FusedDataflow, FusedPair,
    FusionDecision, GraphPlan, GraphStep, PlannerConfig,
};
pub use fusecu_ir::{Conv2d, MatMul, MmChain, MmDim, OpGraph, Operand};
pub use fusecu_models::{zoo, TransformerConfig};
pub use fusecu_search::{
    ChainExhaustive, DataflowCache, ExhaustiveSearch, Fitness, FusedExhaustive, FusedGenetic,
    GeneticSearch,
    Parallelism, SweepEngine,
};

pub use crate::pipeline::{
    compare_platforms, compare_platforms_decode, scaling_curve, sequence_sweep,
    validate_buffer_sweep, DiskCacheSession, ScalingPoint,
};
