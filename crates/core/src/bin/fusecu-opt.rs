//! `fusecu-opt` — the one-shot dataflow optimizer as a command-line tool.
//!
//! ```text
//! fusecu-opt M K L BUFFER_ELEMS [N] [regs=R]
//! ```
//!
//! Prints the regime, the principle-optimal dataflow (with its Fig 2-style
//! loop nest), and — when a fourth dimension `N` is given — the Principle 4
//! fusion decision for the pair `E[M,N] = (A[M,K] × B[K,L]) × D[L,N]`.
//! With `regs=R` (e.g. `regs=16384` for a 128×128 PE register file) the
//! two-level plan of §IV-B is printed as well.

use std::process::ExitCode;

use fusecu::prelude::*;

fn usage() -> ExitCode {
    eprintln!("usage: fusecu-opt M K L BUFFER_ELEMS [N] [regs=R]");
    eprintln!("  e.g. fusecu-opt 1024 768 768 524288");
    eprintln!("       fusecu-opt 1024 64 1024 524288 64   (fused pair)");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let regs: Option<u64> = raw
        .iter()
        .find_map(|a| a.strip_prefix("regs=").and_then(|v| v.parse().ok()));
    let args: Vec<u64> = raw
        .iter()
        .filter(|a| !a.starts_with("regs="))
        .map(|a| a.parse::<u64>())
        .collect::<Result<_, _>>()
        .unwrap_or_default();
    if args.len() < 4 || args.len() > 5 || args[..4].contains(&0) {
        return usage();
    }
    let (m, k, l, bs) = (args[0], args[1], args[2], args[3]);
    let mm = MatMul::new(m, k, l);
    println!("operator : {mm}");
    println!(
        "buffer   : {bs} elements -> {} regime (Dmin^2/4 = {}, Dmin^2/2 = {}, Tensor_min = {})",
        BufferRegime::classify(mm, bs),
        mm.min_dim() * mm.min_dim() / 4,
        mm.min_dim() * mm.min_dim() / 2,
        mm.min_tensor_elems()
    );
    let Some(best) = fusecu::dataflow::principles::try_optimize_with(&CostModel::paper(), mm, bs)
    else {
        eprintln!("buffer of {bs} elements cannot hold even a unit tiling (need >= 3)");
        return ExitCode::FAILURE;
    };
    println!("dataflow : {best}");
    println!(
        "lower bound check: MA = {} (ideal {}, x{:.4})",
        best.total_ma(),
        mm.ideal_ma(),
        best.total_ma() as f64 / mm.ideal_ma() as f64
    );
    println!();
    print!("{}", best.render());

    if let Some(rs) = regs {
        match fusecu::dataflow::optimize_two_level(&CostModel::paper(), mm, bs, rs) {
            Some(two) => {
                println!();
                println!("two-level (registers = {rs} elements): {two}");
                println!(
                    "  DRAM<->buffer {} elems, buffer<->PEs {} elems",
                    two.dram_ma().total(),
                    two.buffer_ma().total()
                );
            }
            None => println!("\nregisters of {rs} elements cannot hold a unit tiling"),
        }
    }

    if let Some(&n) = args.get(4) {
        if n == 0 {
            return usage();
        }
        let pair = FusedPair::try_new(mm, MatMul::new(m, l, n)).expect("shapes chain");
        let d = fusecu::decide(&CostModel::paper(), pair, bs);
        println!();
        println!("fusion   : {pair}");
        println!(
            "classes  : {:?} / {:?} (same NRA: {})",
            d.producer_class(),
            d.consumer_class(),
            d.same_nra()
        );
        match d.fused() {
            Some(f) if d.profitable() => {
                println!("decision : FUSE — saves {} elements ({} vs {} unfused)",
                    d.saved_ma(), f.total_ma(), d.unfused_ma());
                println!("fused    : {f}");
            }
            Some(f) => {
                println!("decision : do not fuse — fused {} >= unfused {}",
                    f.total_ma(), d.unfused_ma());
            }
            None => println!("decision : no fused dataflow fits the buffer"),
        }
    }
    ExitCode::SUCCESS
}
