//! `fusecu-serve` — the optimizer as a persistent daemon.
//!
//! ```text
//! fusecu-serve [--listen tcp:HOST:PORT] [--batch-window-us N] [--max-batch N]
//!              [--snapshot-interval-secs N] [--snapshot-dirty N]
//!              [--serial | --threads N] [--no-disk-cache] [--stats-json]
//! ```
//!
//! Speaks the newline-delimited protocol of [`fusecu::server`] on
//! stdin/stdout (the default) or on a TCP socket; see that module's docs
//! for the request grammar. Requests arriving within the batch window are
//! coalesced and deduplicated; answers preserve per-client request order.
//!
//! Three admin verbs are handled ahead of the batcher:
//!
//! * `<id> stats` — one-line JSON: server counters plus the per-section
//!   cache report;
//! * `<id> flush` — incremental cache snapshot now, answers
//!   `ok flushed <entries>`;
//! * `<id> shutdown` — flush, answer `ok bye`, exit (TCP mode: the whole
//!   daemon, not just the connection).
//!
//! The disk caches are preloaded at startup and snapshotted incrementally:
//! a background thread flushes whenever `--snapshot-dirty` entries are
//! pending or `--snapshot-interval-secs` has elapsed, whichever comes
//! first, so a crash loses at most one snapshot interval of new entries.
//! On EOF/shutdown the daemon flushes and prints the cache summary (JSON
//! with `--stats-json`) to stderr.

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fusecu::pipeline::DiskCacheSession;
use fusecu::server::{spawn_frontend, BatchConfig, Server, Submission};
use fusecu_search::Parallelism;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn arg_u64(name: &str, default: u64) -> u64 {
    arg_value(name)
        .map(|v| v.parse().unwrap_or_else(|_| die(name)))
        .unwrap_or(default)
}

fn die(flag: &str) -> ! {
    eprintln!("fusecu-serve: bad value for {flag}");
    std::process::exit(2)
}

/// Shared daemon state: the service, the batch sink, the disk session,
/// and the shutdown latch.
struct Daemon {
    server: Arc<Server>,
    sink: Sender<Submission>,
    session: Arc<Mutex<DiskCacheSession>>,
    quit: AtomicBool,
}

impl Daemon {
    /// Answers the admin verbs inline; `None` means the line is a normal
    /// request for the batcher.
    fn try_admin(&self, line: &str) -> Option<String> {
        let trimmed = line.trim();
        let (id, verb) = trimmed.split_once(char::is_whitespace)?;
        match verb.trim() {
            "stats" => {
                let cache = self.session.lock().unwrap().stats_json();
                Some(format!(
                    "{id} ok {{\"server\":{},\"cache\":{cache}}}",
                    self.server.stats().json()
                ))
            }
            "flush" => {
                let flushed = self.session.lock().unwrap().flush();
                Some(match flushed {
                    Ok(n) => format!("{id} ok flushed {n}"),
                    Err(_) => format!("{id} err io"),
                })
            }
            "shutdown" => {
                let _ = self.session.lock().unwrap().flush();
                self.quit.store(true, Ordering::SeqCst);
                Some(format!("{id} ok bye"))
            }
            _ => None,
        }
    }

    /// Pumps one client: reads request lines from `input`, writes response
    /// lines to `output` in request order while keeping requests pipelined
    /// through the batcher. Returns when the client closes or shutdown is
    /// requested.
    fn pump(&self, input: impl BufRead, mut output: impl Write + Send) {
        // In-order reply queue: the reader pushes one receiver per
        // request, the writer drains them in sequence.
        let (pending_tx, pending_rx) = channel::<Receiver<String>>();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for rx in pending_rx {
                    let Ok(resp) = rx.recv() else { continue };
                    if writeln!(output, "{resp}").is_err() || output.flush().is_err() {
                        return;
                    }
                }
            });
            for line in input.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let (tx, rx) = channel();
                if let Some(resp) = self.try_admin(&line) {
                    let _ = tx.send(resp);
                } else if self.sink.send(Submission { line, reply: tx }).is_err() {
                    break;
                }
                if pending_tx.send(rx).is_err() {
                    break;
                }
                if self.quit.load(Ordering::SeqCst) {
                    break;
                }
            }
            drop(pending_tx);
        });
    }
}

fn main() -> ExitCode {
    let parallelism = Parallelism::from_args();
    let stats_json = std::env::args().any(|a| a == "--stats-json");
    let cfg = BatchConfig {
        window: Duration::from_micros(arg_u64("--batch-window-us", 1000)),
        max_batch: arg_u64("--max-batch", 1024) as usize,
    };
    let snapshot_interval = Duration::from_secs(arg_u64("--snapshot-interval-secs", 30));
    let snapshot_dirty = arg_u64("--snapshot-dirty", 256) as usize;

    let session = Arc::new(Mutex::new(DiskCacheSession::from_args()));
    let server = Arc::new(Server::new(parallelism));
    let (sink, batch_handle) = spawn_frontend(Arc::clone(&server), cfg);
    let daemon = Arc::new(Daemon {
        server,
        sink,
        session: Arc::clone(&session),
        quit: AtomicBool::new(false),
    });

    // Periodic incremental snapshots: dirty-entry threshold or timer,
    // whichever fires first. Holds only the session (not the daemon, whose
    // drop stops the batcher); dies with the process.
    {
        let session = Arc::clone(&session);
        std::thread::spawn(move || {
            let tick = Duration::from_millis(200).min(snapshot_interval);
            let mut since_flush = Duration::ZERO;
            loop {
                std::thread::sleep(tick);
                since_flush += tick;
                let mut session = session.lock().unwrap();
                let dirty = session.dirty_entries();
                if dirty >= snapshot_dirty || (since_flush >= snapshot_interval && dirty > 0) {
                    let _ = session.flush();
                    since_flush = Duration::ZERO;
                }
            }
        });
    }

    match arg_value("--listen") {
        None => {
            let stdin = std::io::stdin();
            daemon.pump(stdin.lock(), std::io::stdout());
        }
        Some(addr) => {
            let Some(hostport) = addr.strip_prefix("tcp:") else {
                eprintln!("fusecu-serve: --listen expects tcp:HOST:PORT, got {addr}");
                return ExitCode::from(2);
            };
            let listener = match std::net::TcpListener::bind(hostport) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("fusecu-serve: cannot bind {hostport}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("fusecu-serve: listening on {}", listener.local_addr().unwrap());
            // Poll the listener so a `shutdown` issued on one connection
            // ends the accept loop without needing another client.
            listener.set_nonblocking(true).expect("nonblocking listener");
            std::thread::scope(|scope| {
                while !daemon.quit.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false).expect("blocking stream");
                            let daemon = Arc::clone(&daemon);
                            scope.spawn(move || {
                                let reader =
                                    BufReader::new(stream.try_clone().expect("clone stream"));
                                daemon.pump(reader, stream);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => continue,
                    }
                }
            });
        }
    }

    // EOF or shutdown: stop the batcher, flush, report.
    drop(daemon);
    let _ = batch_handle.join();
    let mut session = session.lock().unwrap();
    let _ = session.flush();
    if stats_json {
        eprintln!("{}", session.stats_json());
    } else {
        eprintln!("{}", session.summary());
    }
    ExitCode::SUCCESS
}
