//! Optimizer-as-a-service: the request protocol and batching engine
//! behind `fusecu serve`.
//!
//! A figure binary pays the process-startup tax — parsing, preloading the
//! disk caches, warming the memo maps — on every invocation. The serve
//! daemon pays it once: a persistent process answers optimization queries
//! over a newline-delimited text protocol, backed by the same process-wide
//! sharded memo caches the binaries use, so every repeated query is a
//! cache hit and every *concurrently repeated* query is deduplicated to a
//! single computation.
//!
//! ## Protocol
//!
//! One request per line, ASCII, whitespace-separated tokens:
//!
//! ```text
//! <id> ping
//! <id> optimize-op <m> <k> <l> <bs> <model>
//! <id> plan-chain <bs> <model> <n> <m1> <k1> <l1> ... <mn> <kn> <ln>
//! <id> plan-graph <bs> <model> <nm> {<id> <m> <k> <l> <count>}* <nl> {<p> <c>}*
//! <id> score <m> <k> <l> <order> <tm> <tk> <tl> <model>
//! ```
//!
//! `<id>` is an opaque client token echoed back verbatim; `<model>` is
//! `paper` or `rw`; `<order>` is a permutation of `mkl` (outermost
//! first). Responses are one line each:
//!
//! ```text
//! <id> ok <payload>
//! <id> err <code>
//! ```
//!
//! A malformed line never kills the daemon — it produces `<id> err
//! <code>` (or `- err <code>` when even the id is missing). Responses are
//! deterministic: the same request line always yields the same response
//! bytes, whether answered serially, in a batch, or from the warm cache.
//!
//! ## Batching and deduplication
//!
//! [`run_batch_loop`] coalesces requests arriving within a window into
//! one batch, deduplicates them on their canonical encoding (the request
//! line minus the id), computes each distinct query once through the
//! parallel engine, and fans the answers back out — N identical in-flight
//! queries cost one computation *and* one cache insertion.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fusecu_dataflow::{CostModel, LoopNest, Tiling};
use fusecu_ir::{FuseLink, MatMul, MmChain, MmDag, MmDim, NodeId};
use fusecu_search::{par_map, DataflowCache, Parallelism};

/// Largest matmul chain a `plan-chain` request may carry.
pub const MAX_CHAIN_OPS: usize = 64;
/// Largest node count a `plan-graph` request may carry.
pub const MAX_GRAPH_NODES: usize = 64;
/// Largest link count a `plan-graph` request may carry.
pub const MAX_GRAPH_LINKS: usize = 256;
/// Largest accepted matmul dimension (keeps a single query's work bounded).
pub const MAX_DIM: u64 = 1 << 24;
/// Largest accepted buffer size in elements.
pub const MAX_BUFFER: u64 = 1 << 40;

/// A parsed, validated request body (everything after the id token).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered without touching the optimizer.
    Ping,
    /// One-shot principle-optimized dataflow for a single matmul.
    OptimizeOp {
        /// The matmul shape.
        mm: MatMul,
        /// Buffer size in elements.
        bs: u64,
        /// Cost model.
        model: CostModel,
    },
    /// Optimal k-ary fusion plan for a linear matmul chain.
    PlanChain {
        /// The chain, producer to consumer.
        chain: MmChain,
        /// Buffer size in elements.
        bs: u64,
        /// Cost model.
        model: CostModel,
    },
    /// Whole-graph fusion plan for a matmul DAG.
    PlanGraph {
        /// The DAG (validated by [`MmDag::from_parts`]).
        dag: MmDag,
        /// Buffer size in elements.
        bs: u64,
        /// Cost model.
        model: CostModel,
    },
    /// Memory access of one explicit dataflow (pure evaluation, uncached).
    Score {
        /// The matmul shape.
        mm: MatMul,
        /// Loop nest to score.
        nest: LoopNest,
        /// Cost model.
        model: CostModel,
    },
}

/// Why a request line was rejected. The wire code is
/// [`ParseError::code`]; every variant is a client error, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The line had no request body after the id.
    Empty,
    /// Unknown verb token.
    BadVerb,
    /// Wrong token count or a token that failed to parse as a number.
    BadToken,
    /// A dimension, tile, count, or buffer size outside its valid range.
    BadRange,
    /// Unknown cost-model token (must be `paper` or `rw`).
    BadModel,
    /// `<order>` was not a permutation of `mkl`.
    BadOrder,
    /// Chain shapes do not compose producer-to-consumer.
    BadChain,
    /// Graph nodes/links violate a DAG invariant.
    BadGraph,
    /// A size field exceeded the protocol limit.
    TooLarge,
}

impl ParseError {
    /// The wire token sent back as `<id> err <code>`.
    pub fn code(self) -> &'static str {
        match self {
            ParseError::Empty => "empty",
            ParseError::BadVerb => "bad-verb",
            ParseError::BadToken => "bad-token",
            ParseError::BadRange => "bad-range",
            ParseError::BadModel => "bad-model",
            ParseError::BadOrder => "bad-order",
            ParseError::BadChain => "bad-chain",
            ParseError::BadGraph => "bad-graph",
            ParseError::TooLarge => "too-large",
        }
    }
}

fn parse_u64(tok: Option<&str>) -> Result<u64, ParseError> {
    tok.ok_or(ParseError::BadToken)?
        .parse::<u64>()
        .map_err(|_| ParseError::BadToken)
}

fn parse_usize(tok: Option<&str>) -> Result<usize, ParseError> {
    tok.ok_or(ParseError::BadToken)?
        .parse::<usize>()
        .map_err(|_| ParseError::BadToken)
}

fn parse_dim(tok: Option<&str>) -> Result<u64, ParseError> {
    let v = parse_u64(tok)?;
    if v == 0 || v > MAX_DIM {
        return Err(ParseError::BadRange);
    }
    Ok(v)
}

fn parse_mm(toks: &mut std::str::SplitWhitespace<'_>) -> Result<MatMul, ParseError> {
    let m = parse_dim(toks.next())?;
    let k = parse_dim(toks.next())?;
    let l = parse_dim(toks.next())?;
    Ok(MatMul::new(m, k, l))
}

fn parse_bs(tok: Option<&str>) -> Result<u64, ParseError> {
    let v = parse_u64(tok)?;
    // Three elements is the principle optimizer's hard floor (one live
    // element per tensor).
    if !(3..=MAX_BUFFER).contains(&v) {
        return Err(ParseError::BadRange);
    }
    Ok(v)
}

fn parse_model(tok: Option<&str>) -> Result<CostModel, ParseError> {
    match tok {
        Some("paper") => Ok(CostModel::paper()),
        Some("rw") => Ok(CostModel::read_write()),
        _ => Err(ParseError::BadModel),
    }
}

/// The wire token of a cost model (`paper` / `rw`).
pub fn model_token(model: &CostModel) -> &'static str {
    if *model == CostModel::paper() {
        "paper"
    } else {
        "rw"
    }
}

fn dim_char(d: MmDim) -> char {
    match d {
        MmDim::M => 'm',
        MmDim::K => 'k',
        MmDim::L => 'l',
    }
}

fn parse_order(tok: Option<&str>) -> Result<[MmDim; 3], ParseError> {
    let tok = tok.ok_or(ParseError::BadToken)?;
    let mut order = [MmDim::M; 3];
    if tok.len() != 3 {
        return Err(ParseError::BadOrder);
    }
    for (slot, c) in order.iter_mut().zip(tok.chars()) {
        *slot = match c {
            'm' => MmDim::M,
            'k' => MmDim::K,
            'l' => MmDim::L,
            _ => return Err(ParseError::BadOrder),
        };
    }
    if order[0] == order[1] || order[0] == order[2] || order[1] == order[2] {
        return Err(ParseError::BadOrder);
    }
    Ok(order)
}

impl Request {
    /// Parses a request body (the line after the id token has been split
    /// off). Every byte of the body is consumed; trailing tokens are an
    /// error.
    pub fn parse(body: &str) -> Result<Request, ParseError> {
        let mut toks = body.split_whitespace();
        let verb = toks.next().ok_or(ParseError::Empty)?;
        let req = match verb {
            "ping" => Request::Ping,
            "optimize-op" => {
                let mm = parse_mm(&mut toks)?;
                let bs = parse_bs(toks.next())?;
                let model = parse_model(toks.next())?;
                Request::OptimizeOp { mm, bs, model }
            }
            "plan-chain" => {
                let bs = parse_bs(toks.next())?;
                let model = parse_model(toks.next())?;
                let n = parse_usize(toks.next())?;
                if n == 0 {
                    return Err(ParseError::BadRange);
                }
                if n > MAX_CHAIN_OPS {
                    return Err(ParseError::TooLarge);
                }
                let mut mms = Vec::with_capacity(n);
                for _ in 0..n {
                    mms.push(parse_mm(&mut toks)?);
                }
                let chain = MmChain::try_new(mms).map_err(|_| ParseError::BadChain)?;
                Request::PlanChain { chain, bs, model }
            }
            "plan-graph" => {
                let bs = parse_bs(toks.next())?;
                let model = parse_model(toks.next())?;
                let nm = parse_usize(toks.next())?;
                if nm == 0 {
                    return Err(ParseError::BadRange);
                }
                if nm > MAX_GRAPH_NODES {
                    return Err(ParseError::TooLarge);
                }
                let mut mms = Vec::with_capacity(nm);
                for _ in 0..nm {
                    let id = parse_usize(toks.next())?;
                    let mm = parse_mm(&mut toks)?;
                    let count = parse_u64(toks.next())?;
                    if count == 0 || count > MAX_DIM {
                        return Err(ParseError::BadRange);
                    }
                    mms.push((NodeId(id), mm, count));
                }
                let nl = parse_usize(toks.next())?;
                if nl > MAX_GRAPH_LINKS {
                    return Err(ParseError::TooLarge);
                }
                let mut links = Vec::with_capacity(nl);
                for _ in 0..nl {
                    let producer = parse_usize(toks.next())?;
                    let consumer = parse_usize(toks.next())?;
                    links.push(FuseLink { producer, consumer });
                }
                let dag = MmDag::from_parts(mms, links).ok_or(ParseError::BadGraph)?;
                Request::PlanGraph { dag, bs, model }
            }
            "score" => {
                let mm = parse_mm(&mut toks)?;
                let order = parse_order(toks.next())?;
                let tm = parse_dim(toks.next())?;
                let tk = parse_dim(toks.next())?;
                let tl = parse_dim(toks.next())?;
                let model = parse_model(toks.next())?;
                Request::Score {
                    mm,
                    nest: LoopNest::new(order, Tiling::new(tm, tk, tl)),
                    model,
                }
            }
            _ => return Err(ParseError::BadVerb),
        };
        if toks.next().is_some() {
            return Err(ParseError::BadToken);
        }
        Ok(req)
    }

    /// The canonical wire encoding of the body — what [`Request::parse`]
    /// round-trips to, and the key batches deduplicate on. Two lines with
    /// different ids but the same canonical body are the same query.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        match self {
            Request::Ping => "ping".to_string(),
            Request::OptimizeOp { mm, bs, model } => format!(
                "optimize-op {} {} {} {bs} {}",
                mm.m(),
                mm.k(),
                mm.l(),
                model_token(model)
            ),
            Request::PlanChain { chain, bs, model } => {
                let mut s = format!("plan-chain {bs} {} {}", model_token(model), chain.mms().len());
                for mm in chain.mms() {
                    let _ = write!(s, " {} {} {}", mm.m(), mm.k(), mm.l());
                }
                s
            }
            Request::PlanGraph { dag, bs, model } => {
                let mut s = format!("plan-graph {bs} {} {}", model_token(model), dag.mms().len());
                for (id, mm, count) in dag.mms() {
                    let _ = write!(s, " {} {} {} {} {count}", id.0, mm.m(), mm.k(), mm.l());
                }
                let _ = write!(s, " {}", dag.links().len());
                for link in dag.links() {
                    let _ = write!(s, " {} {}", link.producer, link.consumer);
                }
                s
            }
            Request::Score { mm, nest, model } => {
                let order: String = nest.order.iter().map(|&d| dim_char(d)).collect();
                format!(
                    "score {} {} {} {order} {} {} {} {}",
                    mm.m(),
                    mm.k(),
                    mm.l(),
                    nest.tiling.tile(MmDim::M),
                    nest.tiling.tile(MmDim::K),
                    nest.tiling.tile(MmDim::L),
                    model_token(model)
                )
            }
        }
    }
}

/// Monotonic counters of one [`Server`]'s lifetime, all lock-free.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Request lines received (well-formed or not).
    pub requests: AtomicU64,
    /// Lines rejected with an `err` response.
    pub parse_errors: AtomicU64,
    /// Batches dispatched.
    pub batches: AtomicU64,
    /// Requests answered by batch-level deduplication (a duplicate of an
    /// in-batch query; cache hits are counted by the caches themselves).
    pub deduped: AtomicU64,
    /// Distinct queries actually computed (or cache-answered) by batches.
    pub computed: AtomicU64,
}

impl ServerStats {
    /// One-line JSON rendering for the daemon's `stats` verb.
    pub fn json(&self) -> String {
        format!(
            "{{\"requests\":{},\"parse_errors\":{},\"batches\":{},\"deduped\":{},\"computed\":{}}}",
            self.requests.load(Ordering::Relaxed),
            self.parse_errors.load(Ordering::Relaxed),
            self.batches.load(Ordering::Relaxed),
            self.deduped.load(Ordering::Relaxed),
            self.computed.load(Ordering::Relaxed),
        )
    }
}

/// The optimizer service: stateless request evaluation over the
/// process-wide memo caches, plus batch dedup. Cheap to share behind an
/// [`Arc`]; all state is the global caches and the atomic counters.
#[derive(Debug)]
pub struct Server {
    parallelism: Parallelism,
    stats: ServerStats,
}

impl Server {
    /// A server evaluating batch misses under the given work-distribution
    /// policy.
    pub fn new(parallelism: Parallelism) -> Server {
        Server {
            parallelism,
            stats: ServerStats::default(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Evaluates one parsed request to its `ok ...` payload. Deterministic
    /// and total: every valid request has exactly one answer.
    pub fn eval(&self, req: &Request) -> String {
        match req {
            Request::Ping => "ok pong".to_string(),
            Request::OptimizeOp { mm, bs, model } => {
                match DataflowCache::global().principle(model, *mm, *bs) {
                    Some(df) => {
                        let order: String =
                            df.nest().order.iter().map(|&d| dim_char(d)).collect();
                        let t = df.tiling();
                        format!(
                            "ok ma {} order {order} tiles {} {} {}",
                            df.total_ma(),
                            t.tile(MmDim::M),
                            t.tile(MmDim::K),
                            t.tile(MmDim::L)
                        )
                    }
                    None => "ok infeasible".to_string(),
                }
            }
            Request::PlanChain { chain, bs, model } => {
                match fusecu_fusion::planner::try_plan_chain_cached(model, chain, *bs) {
                    Some(plan) => format!(
                        "ok ma {} steps {} fused {}",
                        plan.total_ma(),
                        plan.steps().len(),
                        plan.fused_pair_count()
                    ),
                    None => "ok infeasible".to_string(),
                }
            }
            Request::PlanGraph { dag, bs, model } => {
                match fusecu_fusion::graph_planner::try_plan_dag_cached(model, dag, *bs) {
                    Some(plan) => format!(
                        "ok ma {} steps {} fused {} depth {}",
                        plan.total_ma(),
                        plan.steps().len(),
                        plan.fused_step_count(),
                        plan.max_fusion_depth()
                    ),
                    None => "ok infeasible".to_string(),
                }
            }
            Request::Score { mm, nest, model } => {
                format!("ok ma {}", model.evaluate(*mm, nest).total())
            }
        }
    }

    /// Answers one raw request line (`<id> <verb> ...`) serially — the
    /// reference path batches must match byte-for-byte.
    pub fn answer_line(&self, line: &str) -> String {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let trimmed = line.trim();
        let (id, body) = match trimmed.split_once(char::is_whitespace) {
            Some((id, body)) => (id, body),
            None if trimmed.is_empty() => {
                self.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                return "- err empty".to_string();
            }
            // A lone token: treat it as an id with an empty body.
            None => (trimmed, ""),
        };
        match Request::parse(body) {
            Ok(req) => {
                self.stats.computed.fetch_add(1, Ordering::Relaxed);
                format!("{id} {}", self.eval(&req))
            }
            Err(e) => {
                self.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                format!("{id} err {}", e.code())
            }
        }
    }

    /// Answers a batch of raw request lines, deduplicating on the
    /// canonical body so N identical in-flight queries cost one
    /// computation. Responses are positionally aligned with `lines` and
    /// byte-identical to answering each line through
    /// [`Server::answer_line`].
    pub fn answer_batch(&self, lines: &[String]) -> Vec<String> {
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .requests
            .fetch_add(lines.len() as u64, Ordering::Relaxed);

        // Parse every line; slot either a ready error response or the
        // index of the deduplicated query answering it.
        enum Slot {
            Ready(String),
            Query { id: String, unique: usize },
        }
        let mut uniques: Vec<Request> = Vec::new();
        let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        let slots: Vec<Slot> = lines
            .iter()
            .map(|line| {
                let trimmed = line.trim();
                let (id, body) = match trimmed.split_once(char::is_whitespace) {
                    Some((id, body)) => (id, body),
                    None if trimmed.is_empty() => {
                        self.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                        return Slot::Ready("- err empty".to_string());
                    }
                    None => (trimmed, ""),
                };
                match Request::parse(body) {
                    Ok(req) => {
                        let key = req.canonical();
                        let unique = match index.get(&key) {
                            Some(&u) => {
                                self.stats.deduped.fetch_add(1, Ordering::Relaxed);
                                u
                            }
                            None => {
                                let u = uniques.len();
                                index.insert(key, u);
                                uniques.push(req);
                                u
                            }
                        };
                        Slot::Query {
                            id: id.to_string(),
                            unique,
                        }
                    }
                    Err(e) => {
                        self.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                        Slot::Ready(format!("{id} err {}", e.code()))
                    }
                }
            })
            .collect();

        // Compute each distinct query once, fanned across workers.
        self.stats
            .computed
            .fetch_add(uniques.len() as u64, Ordering::Relaxed);
        let answers = par_map(self.parallelism, &uniques, |_, req| self.eval(req));

        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Ready(resp) => resp,
                Slot::Query { id, unique } => format!("{id} {}", answers[unique]),
            })
            .collect()
    }
}

/// Tuning knobs of the batching front-end.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// How long the collector waits after the first request of a batch for
    /// more requests to coalesce.
    pub window: Duration,
    /// Hard cap on requests per batch.
    pub max_batch: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            window: Duration::from_micros(1000),
            max_batch: 1024,
        }
    }
}

/// One queued request: the raw line plus the channel its response goes
/// back on.
#[derive(Debug)]
pub struct Submission {
    /// The raw request line.
    pub line: String,
    /// Where the response line is sent.
    pub reply: Sender<String>,
}

/// The batching front-end: blocks for the first request, coalesces
/// everything arriving within the window (up to `max_batch`), answers the
/// batch with dedup, and fans the responses back out. Returns when every
/// submission sender has been dropped.
pub fn run_batch_loop(server: &Server, cfg: BatchConfig, rx: &Receiver<Submission>) {
    while let Ok(first) = rx.recv() {
        let mut subs = vec![first];
        let deadline = Instant::now() + cfg.window;
        while subs.len() < cfg.max_batch {
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left) {
                Ok(sub) => subs.push(sub),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let lines: Vec<String> = subs.iter().map(|s| s.line.clone()).collect();
        let responses = server.answer_batch(&lines);
        for (sub, resp) in subs.iter().zip(responses) {
            // A client that hung up just loses its answer.
            let _ = sub.reply.send(resp);
        }
    }
}

/// Spawns the batch loop on its own thread and returns the submission
/// sink. Drop every clone of the sender to stop the loop; join the handle
/// to wait for it.
pub fn spawn_frontend(
    server: Arc<Server>,
    cfg: BatchConfig,
) -> (Sender<Submission>, std::thread::JoinHandle<()>) {
    let (tx, rx) = std::sync::mpsc::channel::<Submission>();
    let handle = std::thread::spawn(move || run_batch_loop(&server, cfg, &rx));
    (tx, handle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(Parallelism::Serial)
    }

    #[test]
    fn parse_round_trips_canonical() {
        for body in [
            "ping",
            "optimize-op 1024 768 768 524288 paper",
            "plan-chain 524288 rw 2 128 64 32 128 32 96",
            "plan-graph 32768 paper 2 0 64 64 64 1 1 64 64 64 1 1 0 1",
            "score 64 64 64 mkl 16 64 8 rw",
        ] {
            let req = Request::parse(body).unwrap();
            assert_eq!(req.canonical(), body);
            assert_eq!(Request::parse(&req.canonical()).unwrap(), req);
        }
    }

    #[test]
    fn malformed_lines_error_not_panic() {
        let s = server();
        for line in [
            "",
            "1",
            "1 frobnicate",
            "1 optimize-op 0 1 1 1024 paper",
            "1 optimize-op 8 8 8 2 paper",
            "1 optimize-op 8 8 8 1024 quantum",
            "1 plan-chain 1024 paper 2 8 8 8 9 9 9",
            "1 plan-graph 1024 paper 1 0 8 8 8 1 1 0 0",
            "1 score 8 8 8 mmm 1 1 1 paper",
            "1 score 8 8 8 mkl 0 1 1 paper",
            "1 optimize-op 8 8 8 1024 paper trailing",
        ] {
            let resp = s.answer_line(line);
            assert!(resp.contains(" err "), "{line:?} -> {resp}");
        }
        assert_eq!(s.stats().parse_errors.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn batch_matches_serial_and_dedups() {
        let lines: Vec<String> = vec![
            "1 optimize-op 256 128 64 32768 paper".into(),
            "2 optimize-op 256 128 64 32768 paper".into(),
            "3 score 64 64 64 klm 8 8 8 rw".into(),
            "4 bad-verb-here".into(),
            "5 optimize-op 256 128 64 32768 paper".into(),
        ];
        let batch = server();
        let got = batch.answer_batch(&lines);
        let serial = server();
        let want: Vec<String> = lines.iter().map(|l| serial.answer_line(l)).collect();
        assert_eq!(got, want);
        // ids echo through; identical bodies answered identically.
        assert!(got[0].starts_with("1 ok ma "));
        assert_eq!(got[0].split_once(' ').unwrap().1, got[1].split_once(' ').unwrap().1);
        assert_eq!(got[0].split_once(' ').unwrap().1, got[4].split_once(' ').unwrap().1);
        // Three copies of one query -> 2 deduped; uniques are the
        // optimize-op and the score -> 2 computed.
        assert_eq!(batch.stats().deduped.load(Ordering::Relaxed), 2);
        assert_eq!(batch.stats().computed.load(Ordering::Relaxed), 2);
        assert_eq!(batch.stats().parse_errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn frontend_coalesces_and_replies() {
        let server = Arc::new(Server::new(Parallelism::Serial));
        let (tx, handle) = spawn_frontend(
            Arc::clone(&server),
            BatchConfig {
                window: Duration::from_millis(5),
                max_batch: 64,
            },
        );
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        for i in 0..8 {
            tx.send(Submission {
                line: format!("{i} optimize-op 128 64 32 16384 rw"),
                reply: reply_tx.clone(),
            })
            .unwrap();
        }
        let mut responses: Vec<String> = (0..8).map(|_| reply_rx.recv().unwrap()).collect();
        responses.sort();
        assert_eq!(responses.len(), 8);
        let payload = responses[0].split_once(' ').unwrap().1.to_string();
        for r in &responses {
            assert_eq!(r.split_once(' ').unwrap().1, payload);
        }
        drop(tx);
        handle.join().unwrap();
        // All 8 arrived before the window closed -> dedup saved 7 evals.
        assert!(server.stats().deduped.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn optimize_op_matches_direct_principle() {
        let s = server();
        let mm = MatMul::new(1024, 768, 768);
        let model = CostModel::paper();
        let df = fusecu_dataflow::principles::try_optimize_with(&model, mm, 512 * 1024).unwrap();
        let resp = s.answer_line("7 optimize-op 1024 768 768 524288 paper");
        assert_eq!(
            resp,
            format!(
                "7 ok ma {} order {} tiles {} {} {}",
                df.total_ma(),
                df.nest()
                    .order
                    .iter()
                    .map(|&d| dim_char(d))
                    .collect::<String>(),
                df.tiling().tile(MmDim::M),
                df.tiling().tile(MmDim::K),
                df.tiling().tile(MmDim::L)
            )
        );
    }
}
