//! The end-to-end evaluation pipeline behind every figure.
//!
//! * [`validate_buffer_sweep`] — Fig 9: principle-optimized memory access
//!   against the exhaustive oracle and the DAT-style genetic searcher over
//!   the 32 KiB – 32 MiB buffer range;
//! * [`compare_platforms`] — Fig 10: normalized memory access and
//!   utilization of the five platforms on one model;
//! * [`sequence_sweep`] — Fig 11: the LLaMA2 sequence-length study.
//!
//! The architecture evaluation uses the read-write partial-sum accounting
//! (spilled partials are physically read back), while Fig 9's optimizer
//! validation uses the paper's per-visit equations; both policies ride the
//! same reuse analysis.
//!
//! Every sweep fans its independent points across cores through
//! `fusecu-search`'s parallel engine and shared memo caches; the `_with`
//! variants take an explicit [`Parallelism`] (the binaries' `--serial`
//! escape hatch), and serial/parallel runs produce identical results.
//! [`DiskCacheSession`] extends the sharing across *processes*: the figure
//! binaries preload every memo cache from `target/fusecu-cache/` on
//! startup and write the completed entries back on exit, so a warm rerun
//! answers every repeated point from disk (`--no-disk-cache` opts out).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io;
use std::path::PathBuf;
use std::time::Instant;

use fusecu_arch::{evaluate_graph, ArraySpec, GraphPerf, Platform};
use fusecu_dataflow::CostModel;
use fusecu_ir::MatMul;
use fusecu_models::TransformerConfig;
use fusecu_search::{
    par_map, CacheStats, DataflowCache, Parallelism, SectionCounters, SweepEngine, SweepOutcome,
};

/// The cost model used for architecture evaluation (Fig 10/11).
pub fn evaluation_model() -> CostModel {
    CostModel::read_write()
}

/// The cost model used for optimizer validation (Fig 9), matching the
/// paper's memory-access equations.
pub fn validation_model() -> CostModel {
    CostModel::paper()
}

/// The Fig 9 buffer sweep: 32 KiB to 32 MiB in powers of two.
pub fn fig9_buffer_sizes() -> Vec<u64> {
    (15..=25).map(|p| 1u64 << p).collect()
}

/// One Fig 9 data point: memory access of the three optimizers at one
/// buffer size.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Buffer size in elements.
    pub buffer: u64,
    /// Principle-based (one-shot) memory access.
    pub principle_ma: u64,
    /// Exhaustive-search memory access and evaluation count.
    pub exhaustive: (u64, u64),
    /// Genetic-search (DAT-style) memory access and evaluation count.
    pub genetic: (u64, u64),
}

impl SweepPoint {
    /// Whether the principles met (or beat) both searchers.
    pub fn principles_optimal(&self) -> bool {
        self.principle_ma <= self.exhaustive.0 && self.principle_ma <= self.genetic.0
    }
}

/// Runs the Fig 9 validation for one matmul over a buffer sweep, fanning
/// the points across all available cores through the shared dataflow
/// cache.
///
/// # Panics
///
/// Panics if a buffer size is below the 3-element minimum.
pub fn validate_buffer_sweep(mm: MatMul, buffers: &[u64]) -> Vec<SweepPoint> {
    validate_buffer_sweep_with(mm, buffers, Parallelism::Auto)
}

/// [`validate_buffer_sweep`] with an explicit work-distribution policy
/// (the figure binaries' `--serial` escape hatch). Serial and parallel
/// runs produce identical points: the engine assigns results by item
/// index and every optimizer is deterministic.
pub fn validate_buffer_sweep_with(
    mm: MatMul,
    buffers: &[u64],
    parallelism: Parallelism,
) -> Vec<SweepPoint> {
    let engine = SweepEngine::new(validation_model()).with_parallelism(parallelism);
    engine
        .sweep(&[mm], buffers)
        .into_iter()
        .map(|o| SweepPoint {
            buffer: o.buffer,
            principle_ma: o.principle.total_ma(),
            exhaustive: (o.exhaustive.best().total_ma(), o.exhaustive.evaluations()),
            genetic: (o.genetic.best().total_ma(), o.genetic.evaluations()),
        })
        .collect()
}

/// One point of the worker-scaling study: the full Fig 9 sweep timed at a
/// fixed worker count, from a cold cache.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Worker threads the sweep ran on.
    pub workers: usize,
    /// Wall-clock time of the sweep (timing only; excluded from the
    /// determinism digest).
    pub seconds: f64,
    /// Deterministic digest over every outcome's answers — identical
    /// across worker counts and across runs, the proof the scaling study
    /// timed the *same* computation at every point.
    pub digest: u64,
}

/// Digest of a sweep's outcomes: every answer and evaluation count, no
/// timing. Two runs computing the same sweep hash identically.
fn sweep_digest(outcomes: &[SweepOutcome]) -> u64 {
    let mut h = DefaultHasher::new();
    for o in outcomes {
        o.buffer.hash(&mut h);
        o.principle.total_ma().hash(&mut h);
        o.exhaustive.best().total_ma().hash(&mut h);
        o.exhaustive.evaluations().hash(&mut h);
        o.genetic.best().total_ma().hash(&mut h);
        o.genetic.evaluations().hash(&mut h);
    }
    h.finish()
}

/// Times the Fig 9 `(mm × buffers)` sweep at each worker count, each run
/// from its own cold [`DataflowCache`] so every point measures compute
/// rather than hits left behind by the previous point. Each per-run cache
/// is dropped with its engine when the point finishes — repeated curves
/// no longer grow the process.
///
/// # Panics
///
/// Panics if a buffer size is below the 3-element minimum.
pub fn scaling_curve(mm: MatMul, buffers: &[u64], worker_counts: &[usize]) -> Vec<ScalingPoint> {
    worker_counts
        .iter()
        .map(|&workers| {
            let cache = std::sync::Arc::new(DataflowCache::new());
            let engine = SweepEngine::new(validation_model())
                .with_parallelism(Parallelism::Threads(workers))
                .with_cache(cache);
            let t0 = Instant::now();
            let outcomes = engine.sweep(&[mm], buffers);
            let seconds = t0.elapsed().as_secs_f64();
            ScalingPoint {
                workers,
                seconds,
                digest: sweep_digest(&outcomes),
            }
        })
        .collect()
}

/// One Fig 10 row: the five platforms evaluated on one model.
#[derive(Debug, Clone)]
pub struct PlatformRow {
    /// The model evaluated.
    pub model: TransformerConfig,
    /// The architecture point.
    pub spec: ArraySpec,
    perfs: Vec<(Platform, GraphPerf)>,
}

impl PlatformRow {
    /// The evaluated performance on one platform.
    pub fn perf(&self, platform: Platform) -> &GraphPerf {
        &self
            .perfs
            .iter()
            .find(|(p, _)| *p == platform)
            .expect("all platforms evaluated")
            .1
    }

    /// Memory access normalized to TPUv4i (the Fig 10 bar heights).
    pub fn normalized_ma(&self, platform: Platform) -> f64 {
        self.perf(platform).total_ma() as f64 / self.perf(Platform::Tpuv4i).total_ma() as f64
    }

    /// Utilization (the Fig 10 line values).
    pub fn utilization(&self, platform: Platform) -> f64 {
        self.perf(platform).utilization(&self.spec)
    }

    /// Speedup of `platform` over `base`.
    pub fn speedup(&self, platform: Platform, base: Platform) -> f64 {
        self.perf(base).total_cycles() as f64 / self.perf(platform).total_cycles() as f64
    }
}

/// Evaluates one model on every platform at the paper's default
/// architecture point.
pub fn compare_platforms(model: &TransformerConfig) -> PlatformRow {
    compare_platforms_at(model, &ArraySpec::paper_default())
}

/// Evaluates one model on every platform at an explicit architecture
/// point, one platform per worker thread.
pub fn compare_platforms_at(model: &TransformerConfig, spec: &ArraySpec) -> PlatformRow {
    compare_platforms_at_with(model, spec, Parallelism::Auto)
}

/// [`compare_platforms_at`] with an explicit work-distribution policy.
pub fn compare_platforms_at_with(
    model: &TransformerConfig,
    spec: &ArraySpec,
    parallelism: Parallelism,
) -> PlatformRow {
    let cost = evaluation_model();
    let graph = model.build_graph();
    let perfs = par_map(parallelism, &Platform::ALL, |_, p| {
        (*p, evaluate_graph(spec, *p, &cost, &graph))
    });
    PlatformRow {
        model: model.clone(),
        spec: *spec,
        perfs,
    }
}

/// Evaluates a whole model suite, fanning `(model, platform)` pairs — the
/// finest independent grain — across workers. Row order follows `models`;
/// results are identical to calling [`compare_platforms_at`] per model.
pub fn compare_suite_with(
    models: &[TransformerConfig],
    spec: &ArraySpec,
    parallelism: Parallelism,
) -> Vec<PlatformRow> {
    let cost = evaluation_model();
    let graphs: Vec<_> = models.iter().map(|m| m.build_graph()).collect();
    let pairs: Vec<(usize, Platform)> = (0..models.len())
        .flat_map(|i| Platform::ALL.iter().map(move |&p| (i, p)))
        .collect();
    let perfs = par_map(parallelism, &pairs, |_, &(i, p)| {
        (p, evaluate_graph(spec, p, &cost, &graphs[i]))
    });
    models
        .iter()
        .zip(perfs.chunks_exact(Platform::ALL.len()))
        .map(|(m, row)| PlatformRow {
            model: m.clone(),
            spec: *spec,
            perfs: row.to_vec(),
        })
        .collect()
}

/// Fig 10 means over a model suite: returns, per platform, the average
/// normalized MA, the average utilization, and the average speedup over
/// TPUv4i.
pub fn suite_means(rows: &[PlatformRow]) -> Vec<(Platform, f64, f64, f64)> {
    Platform::ALL
        .iter()
        .map(|p| {
            let n = rows.len() as f64;
            let ma = rows.iter().map(|r| r.normalized_ma(*p)).sum::<f64>() / n;
            let util = rows.iter().map(|r| r.utilization(*p)).sum::<f64>() / n;
            let spd = rows
                .iter()
                .map(|r| r.speedup(*p, Platform::Tpuv4i))
                .sum::<f64>()
                / n;
            (*p, ma, util, spd)
        })
        .collect()
}

/// Evaluates one model's *decode* step (one query token against a KV cache
/// of `context_len` tokens) on every platform — the autoregressive-phase
/// extension of the Fig 10 methodology.
pub fn compare_platforms_decode(model: &TransformerConfig, context_len: u64) -> PlatformRow {
    compare_platforms_decode_with(model, context_len, Parallelism::Auto)
}

/// [`compare_platforms_decode`] with an explicit work-distribution policy.
pub fn compare_platforms_decode_with(
    model: &TransformerConfig,
    context_len: u64,
    parallelism: Parallelism,
) -> PlatformRow {
    let spec = ArraySpec::paper_default();
    let cost = evaluation_model();
    let graph = model.build_decode_graph(context_len);
    let perfs = par_map(parallelism, &Platform::ALL, |_, p| {
        (*p, evaluate_graph(&spec, *p, &cost, &graph))
    });
    PlatformRow {
        model: model.clone(),
        spec,
        perfs,
    }
}

/// The Fig 11 sweep: LLaMA2 at each sequence length, all platforms.
pub fn sequence_sweep(seq_lengths: &[u64]) -> Vec<(u64, PlatformRow)> {
    sequence_sweep_with(seq_lengths, Parallelism::Auto)
}

/// [`sequence_sweep`] with an explicit work-distribution policy. The fan
/// is over `(sequence length, platform)` pairs — the finest independent
/// grain — with each inner evaluation kept serial so worker counts do not
/// multiply.
pub fn sequence_sweep_with(
    seq_lengths: &[u64],
    parallelism: Parallelism,
) -> Vec<(u64, PlatformRow)> {
    let configs: Vec<TransformerConfig> = seq_lengths
        .iter()
        .map(|&s| fusecu_models::zoo::llama2_with_seq(s))
        .collect();
    let rows = compare_suite_with(&configs, &ArraySpec::paper_default(), parallelism);
    seq_lengths.iter().copied().zip(rows).collect()
}

/// One process's view of the disk-backed memo caches.
///
/// Construct it first thing in `main` (usually via
/// [`DiskCacheSession::from_args`]); it preloads the dataflow, operator,
/// fused-pair, and chain-plan caches from its directory, and writes the
/// completed entries back when dropped (or on an explicit
/// [`DiskCacheSession::save`]). A missing, corrupt, or stale-fingerprint
/// file is a cold start, never an error. Print
/// [`DiskCacheSession::summary`] at the end of a run for the aggregate
/// hit/miss line, or [`DiskCacheSession::stats_json`] for the
/// machine-readable per-section breakdown (`--stats-json`).
///
/// Long-running processes (the `serve` daemon) should call
/// [`DiskCacheSession::flush`] periodically instead of relying on the
/// save-on-drop: flush tracks how many entries each cache file held at
/// its last write and rewrites **only the files whose caches grew**
/// (atomic temp-file + rename per file, safe against concurrent readers
/// and other flushing processes), so previously-flushed entries survive
/// a later panic or `SIGKILL` and an all-hits interval writes nothing.
#[derive(Debug)]
pub struct DiskCacheSession {
    dir: Option<PathBuf>,
    loaded: usize,
    saved: bool,
    /// Entries each cache file held at the last flush/save, indexed as
    /// [dataflow, operators, plans (pairs+chains), graphs]. Counts only
    /// grow (deterministic memo caches), so `current > flushed` is the
    /// dirty test; an eviction can make `current` drop below `flushed`,
    /// in which case the on-disk file is a superset and still valid.
    flushed: [usize; 4],
}

impl DiskCacheSession {
    /// Cache file for the intra-operator sweep caches (`fusecu-search`).
    const DATAFLOW_FILE: &'static str = "dataflow.cache";
    /// Cache file for the per-platform operator-candidate cache.
    const OPERATORS_FILE: &'static str = "operators.cache";
    /// Cache file for the fused-pair and chain-plan caches.
    const PLANS_FILE: &'static str = "plans.cache";
    /// Cache file for the whole-graph fusion-plan cache (stamped with the
    /// planner fingerprint, not the mapping fingerprint).
    const GRAPHS_FILE: &'static str = "graphs.cache";

    /// A session over the default cache directory (`$FUSECU_CACHE_DIR` if
    /// set, else `target/fusecu-cache`), disabled when the process was
    /// invoked with `--no-disk-cache`.
    pub fn from_args() -> DiskCacheSession {
        if std::env::args().any(|a| a == "--no-disk-cache") {
            DiskCacheSession::disabled()
        } else {
            DiskCacheSession::at(fusecu_search::persist::default_cache_dir())
        }
    }

    /// A session that never touches the disk: nothing is preloaded and
    /// [`DiskCacheSession::save`] (and drop) are no-ops. The in-process
    /// memo caches still work.
    pub fn disabled() -> DiskCacheSession {
        DiskCacheSession {
            dir: None,
            loaded: 0,
            saved: false,
            flushed: [0; 4],
        }
    }

    /// A session over an explicit directory, preloading every cache file
    /// found there.
    pub fn at(dir: PathBuf) -> DiskCacheSession {
        // The flush baseline is captured *before* the preloads: computing
        // the arch/graph fingerprints below runs digest probes whose
        // results land in the pair/chain caches but are not yet on any
        // disk file, so they must count as dirty. The price is that the
        // first flush after construction rewrites the preloaded files
        // once (a save is always a full superset snapshot); from then on
        // flushes are incremental.
        let flushed = Self::current_counts();
        let loaded = DataflowCache::global().load_from(&dir.join(Self::DATAFLOW_FILE))
            + fusecu_arch::persist::load_op_cache(&dir.join(Self::OPERATORS_FILE))
            + fusecu_arch::persist::load_fusion_caches(&dir.join(Self::PLANS_FILE))
            + fusecu_arch::persist::load_graph_plan_cache(&dir.join(Self::GRAPHS_FILE));
        DiskCacheSession {
            dir: Some(dir),
            loaded,
            saved: false,
            flushed,
        }
    }

    /// Number of entries preloaded from disk at construction.
    pub fn loaded(&self) -> usize {
        self.loaded
    }

    /// Current entry counts of the persisted caches, grouped by cache
    /// file: [dataflow, operators, plans (pairs + chain plans), graphs].
    fn current_counts() -> [usize; 4] {
        let dataflow: usize = DataflowCache::global()
            .sections()
            .iter()
            .map(|s| s.entries)
            .sum();
        [
            dataflow,
            fusecu_arch::op_cache_counters().entries,
            fusecu_fusion::optimizer::pair_cache_counters().entries
                + fusecu_fusion::planner::plan_cache_counters().entries,
            fusecu_fusion::graph_planner::graph_cache_counters().entries,
        ]
    }

    /// Completed entries not yet written to disk — the daemon's snapshot
    /// trigger. Always 0 for a disabled session.
    pub fn dirty_entries(&self) -> usize {
        if self.dir.is_none() {
            return 0;
        }
        Self::current_counts()
            .iter()
            .zip(&self.flushed)
            .map(|(&cur, &old)| cur.saturating_sub(old))
            .sum()
    }

    /// Writes every completed cache entry back to the session directory;
    /// returns the number of entries written, or 0 for a disabled session.
    /// Unconditional: every cache file is rewritten even when nothing
    /// changed. Prefer [`DiskCacheSession::flush`] for periodic snapshots.
    pub fn save(&mut self) -> io::Result<usize> {
        let Some(dir) = &self.dir else {
            return Ok(0);
        };
        let n = DataflowCache::global().save_to(&dir.join(Self::DATAFLOW_FILE))?
            + fusecu_arch::persist::save_op_cache(&dir.join(Self::OPERATORS_FILE))?
            + fusecu_arch::persist::save_fusion_caches(&dir.join(Self::PLANS_FILE))?
            + fusecu_arch::persist::save_graph_plan_cache(&dir.join(Self::GRAPHS_FILE))?;
        self.saved = true;
        self.flushed = Self::current_counts();
        Ok(n)
    }

    /// Incremental snapshot: rewrites only the cache files whose caches
    /// gained entries since the last flush/save, and returns the number
    /// of entries written (0 when everything is clean or the session is
    /// disabled). Each file is written atomically (temp file + rename),
    /// so a reader — or a crash mid-flush — never observes a torn file,
    /// and entries flushed earlier survive a later panic or `SIGKILL`.
    /// Called automatically on drop (best-effort, errors swallowed).
    pub fn flush(&mut self) -> io::Result<usize> {
        let Some(dir) = &self.dir else {
            return Ok(0);
        };
        let counts = Self::current_counts();
        let mut written = 0;
        if counts[0] > self.flushed[0] {
            written += DataflowCache::global().save_to(&dir.join(Self::DATAFLOW_FILE))?;
            self.flushed[0] = counts[0];
        }
        if counts[1] > self.flushed[1] {
            written += fusecu_arch::persist::save_op_cache(&dir.join(Self::OPERATORS_FILE))?;
            self.flushed[1] = counts[1];
        }
        if counts[2] > self.flushed[2] {
            written += fusecu_arch::persist::save_fusion_caches(&dir.join(Self::PLANS_FILE))?;
            self.flushed[2] = counts[2];
        }
        if counts[3] > self.flushed[3] {
            written += fusecu_arch::persist::save_graph_plan_cache(&dir.join(Self::GRAPHS_FILE))?;
            self.flushed[3] = counts[3];
        }
        Ok(written)
    }

    /// Aggregate hit/miss counters of every memo cache the session
    /// persists.
    pub fn stats(&self) -> CacheStats {
        DataflowCache::global()
            .stats()
            .plus(fusecu_arch::op_cache_stats())
            .plus(fusecu_fusion::optimizer::pair_cache_stats())
            .plus(fusecu_fusion::planner::plan_cache_stats())
            .plus(fusecu_fusion::graph_planner::graph_cache_stats())
    }

    /// Per-section counters of every process-wide memo cache, including
    /// the in-memory-only chain cache (which [`DiskCacheSession::stats`]
    /// and the persisted files exclude).
    pub fn stats_sections(&self) -> Vec<SectionCounters> {
        let [principle, exhaustive, genetic] = DataflowCache::global().sections();
        vec![
            principle,
            exhaustive,
            genetic,
            fusecu_arch::op_cache_counters(),
            fusecu_fusion::optimizer::pair_cache_counters(),
            fusecu_fusion::planner::plan_cache_counters(),
            fusecu_fusion::chain::chain_cache_counters(),
            fusecu_fusion::graph_planner::graph_cache_counters(),
        ]
    }

    /// One-line machine-readable cache report (the binaries' `--stats-json`
    /// output): per-section hits/misses/entries/evictions plus an overall
    /// aggregate across every section listed.
    pub fn stats_json(&self) -> String {
        let sections = self.stats_sections();
        let mut overall = CacheStats::default();
        let mut body = String::new();
        for s in &sections {
            overall = overall.plus(s.stats);
            if !body.is_empty() {
                body.push(',');
            }
            body.push_str(&format!("\"{}\":{}", s.name, s.json()));
        }
        let dir = match &self.dir {
            Some(dir) => format!("\"{}\"", json_escape(&dir.display().to_string())),
            None => "null".to_string(),
        };
        format!(
            "{{\"dir\":{dir},\"preloaded\":{},\"dirty\":{},\"sections\":{{{body}}},\"overall\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.6}}}}}",
            self.loaded,
            self.dirty_entries(),
            overall.hits,
            overall.misses,
            overall.hit_rate()
        )
    }

    /// One summary line for the end of a figure run. Ends with the
    /// greppable `overall hit rate` token CI keys on:
    ///
    /// ```text
    /// disk cache [target/fusecu-cache]: 1182 entries preloaded; 3540 hits / 0 misses (100.0% overall hit rate)
    /// ```
    pub fn summary(&self) -> String {
        let s = self.stats();
        let origin = match &self.dir {
            Some(dir) => format!("disk cache [{}]: {} entries preloaded", dir.display(), self.loaded),
            None => "disk cache disabled (--no-disk-cache)".to_string(),
        };
        format!(
            "{origin}; {} hits / {} misses ({:.1}% overall hit rate)",
            s.hits,
            s.misses,
            100.0 * s.hit_rate()
        )
    }
}

impl Drop for DiskCacheSession {
    fn drop(&mut self) {
        if !self.saved {
            let _ = self.flush();
        }
    }
}

/// Minimal JSON string escaping for paths embedded in the stats report.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_models::zoo;

    #[test]
    fn fig9_sweep_principles_always_optimal() {
        // The Fig 9 headline on the paper's worked-example matmul.
        let mm = MatMul::new(1024, 768, 768);
        let buffers: Vec<u64> = vec![32 * 1024, 512 * 1024, 4 * 1024 * 1024];
        for point in validate_buffer_sweep(mm, &buffers) {
            assert_eq!(
                point.principle_ma, point.exhaustive.0,
                "bs={}: principles must equal the oracle",
                point.buffer
            );
            assert!(point.principles_optimal());
            // One-shot vs search: the searchers evaluate thousands of
            // candidates; the principles none.
            assert!(point.exhaustive.1 > 1_000, "bs={}", point.buffer);
        }
    }

    #[test]
    fn fig9_buffer_range_matches_paper() {
        let sizes = fig9_buffer_sizes();
        assert_eq!(*sizes.first().unwrap(), 32 * 1024);
        assert_eq!(*sizes.last().unwrap(), 32 * 1024 * 1024);
    }

    #[test]
    fn scaling_curve_is_deterministic_across_worker_counts() {
        // Small sweep: the digest column must be constant across worker
        // counts (same computation) and across repeat runs (deterministic).
        let mm = MatMul::new(96, 64, 80);
        let buffers = [128u64, 2_048, 32_768];
        let a = scaling_curve(mm, &buffers, &[1, 2, 4]);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|p| p.digest == a[0].digest), "{a:?}");
        assert!(a.iter().all(|p| p.seconds >= 0.0));
        let b = scaling_curve(mm, &buffers, &[2]);
        assert_eq!(b[0].digest, a[0].digest);
    }

    #[test]
    fn fig10_row_shape() {
        let row = compare_platforms(&zoo::blenderbot());
        assert!((row.normalized_ma(Platform::Tpuv4i) - 1.0).abs() < 1e-12);
        assert!(row.normalized_ma(Platform::FuseCu) < row.normalized_ma(Platform::UnfCu) + 1e-12);
        assert!(row.normalized_ma(Platform::UnfCu) <= row.normalized_ma(Platform::Gemmini));
        assert!(row.speedup(Platform::FuseCu, Platform::Tpuv4i) > 1.0);
    }

    #[test]
    fn fig11_longer_sequences_fuse_better() {
        // The paper: "greater memory access reduction observed for longer
        // sequences". The fusion-specific saving is FuseCU's MA relative to
        // the identical-but-unfused UnfCU; the eliminated score matrix
        // grows as S², so the ratio must fall monotonically with S.
        let rows = sequence_sweep(&[256, 1024, 4096, 16_384]);
        let ratios: Vec<f64> = rows
            .iter()
            .map(|(_, r)| r.normalized_ma(Platform::FuseCu) / r.normalized_ma(Platform::UnfCu))
            .collect();
        for w in ratios.windows(2) {
            assert!(
                w[1] < w[0],
                "fusion benefit must grow with sequence length: {ratios:?}"
            );
        }
        // And at the long end FuseCU's absolute normalized MA also drops.
        let long = &rows[rows.len() - 1].1;
        let mid = &rows[1].1;
        assert!(long.normalized_ma(Platform::FuseCu) < mid.normalized_ma(Platform::FuseCu));
    }

    #[test]
    fn decode_step_evaluates_and_stays_ordered() {
        let row = compare_platforms_decode(&zoo::llama2(), 4096);
        assert!((row.normalized_ma(Platform::Tpuv4i) - 1.0).abs() < 1e-12);
        // Decode is dominated by weight streaming: FuseCU still never loses.
        assert!(row.normalized_ma(Platform::FuseCu) <= 1.0);
        assert!(row.speedup(Platform::FuseCu, Platform::Tpuv4i) >= 1.0);
        // The per-head attention ops are 1xLxd: utilization collapses on a
        // rigid WS fabric relative to prefill.
        let prefill = compare_platforms(&zoo::llama2());
        assert!(row.utilization(Platform::Tpuv4i) < prefill.utilization(Platform::Tpuv4i));
    }

    #[test]
    fn suite_means_cover_all_platforms() {
        let rows = vec![compare_platforms(&zoo::blenderbot())];
        let means = suite_means(&rows);
        assert_eq!(means.len(), 5);
        let fuse = means.iter().find(|(p, ..)| *p == Platform::FuseCu).unwrap();
        assert!(fuse.1 < 1.0 && fuse.3 > 1.0);
    }
}
