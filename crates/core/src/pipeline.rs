//! The end-to-end evaluation pipeline behind every figure.
//!
//! * [`validate_buffer_sweep`] — Fig 9: principle-optimized memory access
//!   against the exhaustive oracle and the DAT-style genetic searcher over
//!   the 32 KiB – 32 MiB buffer range;
//! * [`compare_platforms`] — Fig 10: normalized memory access and
//!   utilization of the five platforms on one model;
//! * [`sequence_sweep`] — Fig 11: the LLaMA2 sequence-length study.
//!
//! The architecture evaluation uses the read-write partial-sum accounting
//! (spilled partials are physically read back), while Fig 9's optimizer
//! validation uses the paper's per-visit equations; both policies ride the
//! same reuse analysis.

use fusecu_arch::{evaluate_graph, ArraySpec, GraphPerf, Platform};
use fusecu_dataflow::principles::try_optimize_with;
use fusecu_dataflow::CostModel;
use fusecu_ir::MatMul;
use fusecu_models::TransformerConfig;
use fusecu_search::{ExhaustiveSearch, GeneticSearch};

/// The cost model used for architecture evaluation (Fig 10/11).
pub fn evaluation_model() -> CostModel {
    CostModel::read_write()
}

/// The cost model used for optimizer validation (Fig 9), matching the
/// paper's memory-access equations.
pub fn validation_model() -> CostModel {
    CostModel::paper()
}

/// The Fig 9 buffer sweep: 32 KiB to 32 MiB in powers of two.
pub fn fig9_buffer_sizes() -> Vec<u64> {
    (15..=25).map(|p| 1u64 << p).collect()
}

/// One Fig 9 data point: memory access of the three optimizers at one
/// buffer size.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Buffer size in elements.
    pub buffer: u64,
    /// Principle-based (one-shot) memory access.
    pub principle_ma: u64,
    /// Exhaustive-search memory access and evaluation count.
    pub exhaustive: (u64, u64),
    /// Genetic-search (DAT-style) memory access and evaluation count.
    pub genetic: (u64, u64),
}

impl SweepPoint {
    /// Whether the principles met (or beat) both searchers.
    pub fn principles_optimal(&self) -> bool {
        self.principle_ma <= self.exhaustive.0 && self.principle_ma <= self.genetic.0
    }
}

/// Runs the Fig 9 validation for one matmul over a buffer sweep.
///
/// # Panics
///
/// Panics if a buffer size is below the 3-element minimum.
pub fn validate_buffer_sweep(mm: MatMul, buffers: &[u64]) -> Vec<SweepPoint> {
    let model = validation_model();
    let oracle = ExhaustiveSearch::new(model);
    let ga = GeneticSearch::new(model);
    buffers
        .iter()
        .map(|&bs| {
            let principle = try_optimize_with(&model, mm, bs)
                .unwrap_or_else(|| panic!("buffer of {bs} elements is infeasible"));
            let ex = oracle.optimize(mm, bs);
            let g = ga.optimize(mm, bs).expect("feasible for the GA too");
            SweepPoint {
                buffer: bs,
                principle_ma: principle.total_ma(),
                exhaustive: (ex.best().total_ma(), ex.evaluations()),
                genetic: (g.best().total_ma(), g.evaluations()),
            }
        })
        .collect()
}

/// One Fig 10 row: the five platforms evaluated on one model.
#[derive(Debug, Clone)]
pub struct PlatformRow {
    /// The model evaluated.
    pub model: TransformerConfig,
    /// The architecture point.
    pub spec: ArraySpec,
    perfs: Vec<(Platform, GraphPerf)>,
}

impl PlatformRow {
    /// The evaluated performance on one platform.
    pub fn perf(&self, platform: Platform) -> &GraphPerf {
        &self
            .perfs
            .iter()
            .find(|(p, _)| *p == platform)
            .expect("all platforms evaluated")
            .1
    }

    /// Memory access normalized to TPUv4i (the Fig 10 bar heights).
    pub fn normalized_ma(&self, platform: Platform) -> f64 {
        self.perf(platform).total_ma() as f64 / self.perf(Platform::Tpuv4i).total_ma() as f64
    }

    /// Utilization (the Fig 10 line values).
    pub fn utilization(&self, platform: Platform) -> f64 {
        self.perf(platform).utilization(&self.spec)
    }

    /// Speedup of `platform` over `base`.
    pub fn speedup(&self, platform: Platform, base: Platform) -> f64 {
        self.perf(base).total_cycles() as f64 / self.perf(platform).total_cycles() as f64
    }
}

/// Evaluates one model on every platform at the paper's default
/// architecture point.
pub fn compare_platforms(model: &TransformerConfig) -> PlatformRow {
    compare_platforms_at(model, &ArraySpec::paper_default())
}

/// Evaluates one model on every platform at an explicit architecture point.
pub fn compare_platforms_at(model: &TransformerConfig, spec: &ArraySpec) -> PlatformRow {
    let cost = evaluation_model();
    let graph = model.build_graph();
    let perfs = Platform::ALL
        .iter()
        .map(|p| (*p, evaluate_graph(spec, *p, &cost, &graph)))
        .collect();
    PlatformRow {
        model: model.clone(),
        spec: *spec,
        perfs,
    }
}

/// Fig 10 means over a model suite: returns, per platform, the average
/// normalized MA, the average utilization, and the average speedup over
/// TPUv4i.
pub fn suite_means(rows: &[PlatformRow]) -> Vec<(Platform, f64, f64, f64)> {
    Platform::ALL
        .iter()
        .map(|p| {
            let n = rows.len() as f64;
            let ma = rows.iter().map(|r| r.normalized_ma(*p)).sum::<f64>() / n;
            let util = rows.iter().map(|r| r.utilization(*p)).sum::<f64>() / n;
            let spd = rows
                .iter()
                .map(|r| r.speedup(*p, Platform::Tpuv4i))
                .sum::<f64>()
                / n;
            (*p, ma, util, spd)
        })
        .collect()
}

/// Evaluates one model's *decode* step (one query token against a KV cache
/// of `context_len` tokens) on every platform — the autoregressive-phase
/// extension of the Fig 10 methodology.
pub fn compare_platforms_decode(model: &TransformerConfig, context_len: u64) -> PlatformRow {
    let spec = ArraySpec::paper_default();
    let cost = evaluation_model();
    let graph = model.build_decode_graph(context_len);
    let perfs = Platform::ALL
        .iter()
        .map(|p| (*p, evaluate_graph(&spec, *p, &cost, &graph)))
        .collect();
    PlatformRow {
        model: model.clone(),
        spec,
        perfs,
    }
}

/// The Fig 11 sweep: LLaMA2 at each sequence length, all platforms.
pub fn sequence_sweep(seq_lengths: &[u64]) -> Vec<(u64, PlatformRow)> {
    seq_lengths
        .iter()
        .map(|&s| {
            let cfg = fusecu_models::zoo::llama2_with_seq(s);
            (s, compare_platforms(&cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_models::zoo;

    #[test]
    fn fig9_sweep_principles_always_optimal() {
        // The Fig 9 headline on the paper's worked-example matmul.
        let mm = MatMul::new(1024, 768, 768);
        let buffers: Vec<u64> = vec![32 * 1024, 512 * 1024, 4 * 1024 * 1024];
        for point in validate_buffer_sweep(mm, &buffers) {
            assert_eq!(
                point.principle_ma, point.exhaustive.0,
                "bs={}: principles must equal the oracle",
                point.buffer
            );
            assert!(point.principles_optimal());
            // One-shot vs search: the searchers evaluate thousands of
            // candidates; the principles none.
            assert!(point.exhaustive.1 > 1_000, "bs={}", point.buffer);
        }
    }

    #[test]
    fn fig9_buffer_range_matches_paper() {
        let sizes = fig9_buffer_sizes();
        assert_eq!(*sizes.first().unwrap(), 32 * 1024);
        assert_eq!(*sizes.last().unwrap(), 32 * 1024 * 1024);
    }

    #[test]
    fn fig10_row_shape() {
        let row = compare_platforms(&zoo::blenderbot());
        assert!((row.normalized_ma(Platform::Tpuv4i) - 1.0).abs() < 1e-12);
        assert!(row.normalized_ma(Platform::FuseCu) < row.normalized_ma(Platform::UnfCu) + 1e-12);
        assert!(row.normalized_ma(Platform::UnfCu) <= row.normalized_ma(Platform::Gemmini));
        assert!(row.speedup(Platform::FuseCu, Platform::Tpuv4i) > 1.0);
    }

    #[test]
    fn fig11_longer_sequences_fuse_better() {
        // The paper: "greater memory access reduction observed for longer
        // sequences". The fusion-specific saving is FuseCU's MA relative to
        // the identical-but-unfused UnfCU; the eliminated score matrix
        // grows as S², so the ratio must fall monotonically with S.
        let rows = sequence_sweep(&[256, 1024, 4096, 16_384]);
        let ratios: Vec<f64> = rows
            .iter()
            .map(|(_, r)| r.normalized_ma(Platform::FuseCu) / r.normalized_ma(Platform::UnfCu))
            .collect();
        for w in ratios.windows(2) {
            assert!(
                w[1] < w[0],
                "fusion benefit must grow with sequence length: {ratios:?}"
            );
        }
        // And at the long end FuseCU's absolute normalized MA also drops.
        let long = &rows[rows.len() - 1].1;
        let mid = &rows[1].1;
        assert!(long.normalized_ma(Platform::FuseCu) < mid.normalized_ma(Platform::FuseCu));
    }

    #[test]
    fn decode_step_evaluates_and_stays_ordered() {
        let row = compare_platforms_decode(&zoo::llama2(), 4096);
        assert!((row.normalized_ma(Platform::Tpuv4i) - 1.0).abs() < 1e-12);
        // Decode is dominated by weight streaming: FuseCU still never loses.
        assert!(row.normalized_ma(Platform::FuseCu) <= 1.0);
        assert!(row.speedup(Platform::FuseCu, Platform::Tpuv4i) >= 1.0);
        // The per-head attention ops are 1xLxd: utilization collapses on a
        // rigid WS fabric relative to prefill.
        let prefill = compare_platforms(&zoo::llama2());
        assert!(row.utilization(Platform::Tpuv4i) < prefill.utilization(Platform::Tpuv4i));
    }

    #[test]
    fn suite_means_cover_all_platforms() {
        let rows = vec![compare_platforms(&zoo::blenderbot())];
        let means = suite_means(&rows);
        assert_eq!(means.len(), 5);
        let fuse = means.iter().find(|(p, ..)| *p == Platform::FuseCu).unwrap();
        assert!(fuse.1 < 1.0 && fuse.3 > 1.0);
    }
}
